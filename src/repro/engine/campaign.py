"""Campaign orchestration: waves of chains, checkpointed, aggregated.

A campaign runs the Figure 9 pipeline as two waves of independent jobs:

1. every synthesis chain (the verified survivors, plus the target,
   become the optimization starting points), then
2. optimization chains over every start — granted incrementally, one
   chain round at a time, so the campaign's stopping rule
   (:mod:`repro.engine.budget`) can stop a kernel whose best verified
   ranking has stabilized (or whose wall-clock budget is spent)
   instead of burning its whole allocation.

Execution lives in :mod:`repro.engine.sweep`: a :class:`Campaign` is
the *description* of one kernel's search (target, specs, options,
fingerprint), and :meth:`Campaign.run` is simply the one-kernel case
of the cross-kernel scheduler — ``repro engine campaign --interleave``
runs many of these over one shared pool.

Each completed job is journaled before the next result is awaited, so
an interrupted campaign resumed with the same run directory re-runs
only the missing chains — and, because jobs are independent, results
are aggregated in plan order, and stopping decisions depend only on
that plan-order sequence (or on journaled grant decisions, for the
clock-driven ``wallclock`` rule), a campaign finishes with results
identical to an uninterrupted run at any worker count.

Progress is streamed as versioned events (:mod:`repro.engine.events`):
to ``<run_dir>/events.jsonl`` when checkpointing, and to the
``EngineOptions.progress`` listener live — the partial aggregates a
multi-host scheduler (or ``--progress``) consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.cost.terms import CostSpec
from repro.engine import serialize
from repro.engine.budget import BudgetSpec
from repro.engine.checkpoint import CheckpointStore
from repro.engine.events import ProgressListener
from repro.engine.serialize import Json
from repro.errors import EngineError
from repro.search.config import SearchConfig
from repro.search.stoke import StokeResult
from repro.search.strategies import StrategySpec
from repro.testgen.annotations import Annotations
from repro.testgen.generator import TestcaseGenerator
from repro.testgen.testcase import Testcase
from repro.verifier.validator import LiveSpec, Validator
from repro.x86.program import Program

INTERLEAVE_NONE = "none"
INTERLEAVE_ROUNDROBIN = "roundrobin"


@dataclass(frozen=True)
class EngineOptions:
    """How to execute a campaign.

    Attributes:
        jobs: worker processes (1 = run in this process).
        run_dir: checkpoint directory; None disables checkpointing.
        resume: continue a journaled campaign instead of starting
            fresh (requires ``run_dir``).
        budget: chain-scheduling stopping rule — a
            :class:`~repro.engine.budget.BudgetSpec` or its spec string
            (``"fixed"``, ``"adaptive:stable=K"``,
            ``"plateau:eps=E,stable=K"``, ``"wallclock:secs=S"``). The
            default ``fixed`` runs every configured chain,
            bit-identical to the pre-budget engine.
        interleave: grant chain rounds from many kernels to one shared
            pool in round-robin order instead of draining one kernel
            at a time. Results are bit-identical either way; the
            policy is frozen in the checkpoint manifest (v4) so a
            resume cannot silently switch schedulers.
        minimize: shrink each kernel's winning rewrite after the
            campaign aggregates — a
            :class:`~repro.minimize.spec.MinimizeSpec`, its spec
            string (a comma-separated pass list, or ``"default"``), or
            None/False to leave winners as found. The policy is frozen
            in the manifest (v6): minimization changes the reported
            rewrite, so a resume cannot silently toggle it.
        harden: seed this campaign's base testcases from the kernel's
            persistent counterexample suite (``cex_suite.jsonl`` in
            the run directory) and persist every counterexample its
            chains discover back — the cross-run CEGIS flywheel.
            Requires ``run_dir``; frozen in the manifest like
            ``minimize``.
        job_timeout: per-attempt deadline in seconds (``--job-timeout``);
            a job whose result has not arrived by its deadline is
            re-granted (capped exponential backoff per attempt). None
            disables deadlines — a crashed worker still retries, but a
            silently stalled one would wait forever.
        retries: re-grants allowed per job after its first attempt
            (``--retries``); a job failing ``retries + 1`` attempts is
            quarantined and the campaign degrades gracefully. Frozen in
            the checkpoint manifest (v7) with ``job_timeout`` as the
            retry-policy fingerprint.
        workers: socket worker subprocesses to spawn (``--workers``);
            0 keeps execution local. ``workers > 0`` replaces the
            local pool (requires ``jobs=1``) with a TCP coordinator
            (:class:`~repro.engine.remote.RemoteExecutor`) that
            loopback workers — and any remote host pointed at its
            address — join and leave mid-campaign. Results are
            bit-identical at any worker count; the *transport*
            (``local`` vs ``tcp:wire=N``) is frozen in the manifest
            (v8), the count — like ``jobs`` — is not.
        faults: deterministic fault injection (``--faults``) — a
            :class:`~repro.engine.faults.FaultPlan`, its spec string
            (``faults:seed=S,crash=P,dup=P,stall=P,corrupt=P``), or
            None for a fault-free run. Injection wraps the executor
            only; it is test machinery, not resume state, so it is
            deliberately *not* part of the manifest fingerprint.
        progress: optional live listener for campaign progress events;
            also streamed to ``<run_dir>/events.jsonl`` when
            checkpointing.
    """

    jobs: int = 1
    run_dir: str | Path | None = None
    resume: bool = False
    budget: BudgetSpec | str = field(default_factory=BudgetSpec)
    interleave: bool = False
    minimize: "MinimizeSpec | str | bool | None" = None
    harden: bool = False
    job_timeout: float | None = None
    retries: int | None = None
    workers: int = 0
    faults: "FaultPlan | str | None" = None
    progress: ProgressListener | None = None

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise EngineError("jobs must be at least 1")
        if self.workers < 0:
            raise EngineError("workers must be at least 0")
        if self.workers > 0 and self.jobs != 1:
            raise EngineError(
                "--workers replaces the local pool; it cannot be "
                "combined with --jobs > 1")
        if self.resume and self.run_dir is None:
            raise EngineError("--resume requires a run directory")
        if self.harden and self.run_dir is None:
            raise EngineError("harden requires a run directory (the "
                              "counterexample suite lives there)")
        object.__setattr__(self, "budget", BudgetSpec.parse(self.budget))
        from repro.minimize.spec import MinimizeSpec
        minimize = self.minimize
        if minimize is False:
            minimize = None
        elif minimize is True:
            minimize = MinimizeSpec()
        elif minimize is not None:
            minimize = MinimizeSpec.parse(minimize)
        object.__setattr__(self, "minimize", minimize)
        from repro.engine.faults import FaultPlan, RetryPolicy
        retries = (RetryPolicy().retries if self.retries is None
                   else self.retries)
        # construct eagerly so bad knobs fail at options time, and
        # keep the normalized policy via the retry_policy property
        policy = RetryPolicy(retries=retries,
                             job_timeout=self.job_timeout)
        object.__setattr__(self, "retries", policy.retries)
        object.__setattr__(self, "job_timeout", policy.job_timeout)
        faults = FaultPlan.parse(self.faults)
        if faults is not None and faults.stall > 0 \
                and self.job_timeout is None:
            raise EngineError(
                "a fault plan with stall > 0 requires a job timeout; "
                "only a deadline can recover a stalled worker")
        object.__setattr__(self, "faults", faults)

    @property
    def interleave_policy(self) -> str:
        """The manifest form of the scheduling policy."""
        return (INTERLEAVE_ROUNDROBIN if self.interleave
                else INTERLEAVE_NONE)

    @property
    def minimize_policy(self) -> str:
        """The manifest form of the minimize policy."""
        from repro.minimize.spec import MINIMIZE_OFF
        if self.minimize is None:
            return MINIMIZE_OFF
        return self.minimize.spec_string()

    @property
    def retry_policy(self) -> "RetryPolicy":
        """The normalized retry policy (``--retries``/``--job-timeout``)."""
        from repro.engine.faults import RetryPolicy
        assert self.retries is not None     # normalized in post-init
        return RetryPolicy(retries=self.retries,
                           job_timeout=self.job_timeout)

    @property
    def transport_policy(self) -> str:
        """The manifest (v8) form of the execution transport.

        ``local`` or ``tcp:wire=N`` — the frame vocabulary, not the
        worker count, is what a resume must agree on (counts, like
        ``jobs``, are invisible in results by construction).
        """
        from repro.engine.transport import transport_spec
        return transport_spec(self.workers)


class Campaign:
    """One orchestrated, resumable search campaign."""

    def __init__(self, target: Program, spec: LiveSpec,
                 annotations: Annotations, *, config: SearchConfig,
                 validator: Validator | None,
                 options: EngineOptions | None = None,
                 cost: CostSpec | None = None,
                 strategy: StrategySpec | None = None,
                 name: str = "target") -> None:
        self.target = target
        self.spec = spec
        self.annotations = annotations
        self.config = config
        self.validator = validator
        self.options = options or EngineOptions()
        self.cost = cost if cost is not None else CostSpec()
        self.strategy = strategy if strategy is not None else StrategySpec()
        self.name = name

    @property
    def budget(self) -> BudgetSpec:
        spec = self.options.budget
        assert isinstance(spec, BudgetSpec)    # normalized in options
        return spec

    def run(self) -> StokeResult:
        """Execute (or finish) the campaign and aggregate the result.

        A single campaign is the one-kernel case of the cross-kernel
        scheduler — see :func:`repro.engine.sweep.run_campaigns` for
        the sweep over many.
        """
        from repro.engine.sweep import run_campaigns
        return run_campaigns([self])[0]

    # -- run state ------------------------------------------------------------

    def _fingerprint(self) -> Json:
        return {
            "target": serialize.program_to_json(self.target),
            "spec": serialize.spec_to_json(self.spec),
            "annotations": serialize.annotations_to_json(
                self.annotations),
            "config": serialize.config_to_json(self.config),
            "cost": self.cost.spec_string(),
            "strategy": self.strategy.spec_string(),
            "budget": self.budget.spec_string(),
            "interleave": self.options.interleave_policy,
            "minimize": self.options.minimize_policy,
            "harden": self.options.harden,
            "retry": self.options.retry_policy.spec_string(),
            "transport": self.options.transport_policy,
        }

    def _initial_state(self, store: CheckpointStore | None) \
            -> tuple[list[Testcase], dict[str, Json]]:
        """Base testcases and already-completed job payloads.

        A resumed campaign takes its testcases from the manifest (they
        were random-generated; regeneration is deterministic, but the
        manifest is the ground truth the journaled jobs actually saw).
        A fresh hardened campaign merges the run directory's persisted
        counterexample suite into the generated base before the
        manifest freezes them — ``start_fresh`` truncates the journals
        but never ``cex_suite.jsonl``, which is what makes the suite a
        cross-run flywheel rather than per-run state.
        """
        if self.options.resume:
            assert store is not None
            manifest = store.load_manifest(self._fingerprint())
            testcases = [serialize.testcase_from_json(tc)
                         for tc in manifest["testcases"]]
            # a structurally damaged journal record (bit rot that
            # still parses as JSON) is dropped here, so the resumed
            # campaign simply re-runs that job instead of crashing
            # the decoder mid-aggregation
            from repro.engine.jobs import payload_problem
            completed = {job_id: payload for job_id, payload
                         in store.completed().items()
                         if payload_problem(payload) is None}
            return testcases, completed
        generator = TestcaseGenerator(self.target, self.spec,
                                      self.annotations,
                                      seed=self.config.seed)
        testcases = generator.generate(self.config.testcase_count)
        if self.options.harden:
            assert store is not None     # enforced by EngineOptions
            from repro.minimize.cegis import CounterexampleSuite
            from repro.testgen.suite import append_unique
            suite = CounterexampleSuite.for_run_dir(store.run_dir)
            append_unique(testcases, suite.testcases())
        if store is not None:
            manifest = self._fingerprint()
            manifest["testcases"] = [serialize.testcase_to_json(tc)
                                     for tc in testcases]
            store.start_fresh(manifest)
        return testcases, {}
