"""The distributed campaign wire format: length-prefixed JSON frames.

A campaign's coordinator and its workers speak a deliberately tiny
protocol over one TCP connection per worker. Every message is a
*frame*: a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON encoding one object. The object's ``"type"`` field
names the frame; everything else is the payload — and the payloads are
the engine's existing :mod:`repro.engine.serialize` encodings
*verbatim* (a ``result`` frame carries exactly the JSON a worker
process would hand the local pool, which is exactly the JSON the
checkpoint journal stores), so the wire introduces no third encoding
that could drift from the journal's.

Frame types, in conversation order::

    hello       worker -> coordinator: wire version + worker label
    context     coordinator -> worker: every kernel's CampaignContext
                (the ``context_to_json`` payloads), installed once
    grant       coordinator -> worker: one chain job to run
    result      worker -> coordinator: the finished job's payload (or
                an ``error`` object when the chain itself raised)
    heartbeat   worker -> coordinator while idle: liveness signal
    bye         either direction: graceful goodbye

The framing is self-delimiting, so the failure modes are crisp: a
length prefix promising more than :data:`MAX_FRAME` bytes, a body that
is not a JSON object, or a connection that ends mid-frame are all
:class:`~repro.errors.TransportError` — the coordinator answers any of
them by dropping that connection, which surfaces the worker's in-flight
jobs as :class:`~repro.errors.WorkerCrashError` and lets the recovery
layer (:mod:`repro.engine.sweep`) re-grant them. A connection that
ends *between* frames is a clean EOF, not an error.

Nothing here depends on the executor: the codec is pure bytes <-> JSON
so the truncation fuzz (``tests/engine/test_wire.py``) can torture
every byte boundary of a frame without sockets.
"""

from __future__ import annotations

import json
import socket
import struct

from repro.engine.serialize import Json
from repro.errors import EngineError, TransportError

#: Version of the frame vocabulary; carried in ``hello``/``context``
#: and frozen (as ``tcp:wire=N``) in the checkpoint manifest (v8). A
#: coordinator and worker disagreeing on it must not exchange jobs.
WIRE_VERSION = 1

HELLO = "hello"
CONTEXT = "context"
GRANT = "grant"
RESULT = "result"
HEARTBEAT = "heartbeat"
BYE = "bye"

FRAME_TYPES = frozenset({HELLO, CONTEXT, GRANT, RESULT, HEARTBEAT, BYE})

#: Fields every frame of a type must carry, beyond ``type`` itself.
_REQUIRED: dict[str, tuple[str, ...]] = {
    HELLO: ("wire", "worker"),
    CONTEXT: ("wire", "contexts"),
    GRANT: ("kernel", "job"),
    RESULT: ("kernel",),       # plus exactly one of payload / error
    HEARTBEAT: (),
    BYE: (),
}

_PREFIX = struct.Struct("!I")

#: Upper bound on one frame's body. Contexts carry whole testcase
#: suites, so the bound is generous — its job is to reject a garbage
#: length prefix (four random bytes read as up to 4 GiB) immediately
#: instead of waiting forever for bytes that will never come.
MAX_FRAME = 64 * 1024 * 1024


def frame_problem(frame: object) -> str | None:
    """Why a decoded frame is structurally unusable, or None if fine.

    The receiving side's gate, symmetric with
    :func:`repro.engine.jobs.payload_problem`: a frame that fails here
    is protocol corruption and costs the sender its connection.
    """
    if not isinstance(frame, dict):
        return f"frame is {type(frame).__name__}, not an object"
    kind = frame.get("type")
    if kind not in FRAME_TYPES:
        return f"unknown frame type {kind!r}"
    missing = [name for name in _REQUIRED[kind] if name not in frame]
    if missing:
        return f"{kind} frame missing fields: {', '.join(missing)}"
    if kind == RESULT and ("payload" in frame) == ("error" in frame):
        return "result frame needs exactly one of payload/error"
    return None


def encode_frame(frame: Json) -> bytes:
    """One frame as wire bytes (length prefix + UTF-8 JSON body)."""
    problem = frame_problem(frame)
    if problem is not None:
        raise TransportError(f"refusing to send corrupt frame: "
                             f"{problem}")
    body = json.dumps(frame, sort_keys=True).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise TransportError(
            f"frame body of {len(body)} bytes exceeds the "
            f"{MAX_FRAME}-byte frame limit")
    return _PREFIX.pack(len(body)) + body


def decode_frame(data: bytes) -> Json:
    """Decode exactly one whole frame (the codec's test seam)."""
    buffer = FrameBuffer()
    buffer.feed(data)
    frames = list(buffer.frames())
    if len(frames) != 1 or buffer.pending:
        raise TransportError(
            f"expected exactly one whole frame, got {len(frames)} "
            f"with {buffer.pending} bytes left over")
    return frames[0]


class FrameBuffer:
    """Reassembles frames from a stream of arbitrary byte chunks.

    The coordinator feeds every chunk a worker socket yields into one
    of these and drains whole frames out; a frame split across reads
    simply waits for its missing bytes. Corruption — an oversized
    length prefix, a non-JSON body, a structurally invalid frame — is
    raised at the first byte that proves it.
    """

    def __init__(self) -> None:
        self._data = bytearray()

    @property
    def pending(self) -> int:
        """Bytes buffered but not yet drained as whole frames."""
        return len(self._data)

    def feed(self, chunk: bytes) -> None:
        self._data.extend(chunk)

    def frames(self):
        """Yield every whole frame currently buffered."""
        while len(self._data) >= _PREFIX.size:
            (length,) = _PREFIX.unpack_from(self._data)
            if length > MAX_FRAME:
                raise TransportError(
                    f"frame length prefix {length} exceeds the "
                    f"{MAX_FRAME}-byte frame limit")
            if len(self._data) < _PREFIX.size + length:
                return
            body = bytes(self._data[_PREFIX.size:_PREFIX.size + length])
            del self._data[:_PREFIX.size + length]
            try:
                frame = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                raise TransportError(
                    "frame body is not valid JSON") from None
            problem = frame_problem(frame)
            if problem is not None:
                raise TransportError(f"corrupt frame: {problem}")
            yield frame


def send_frame(sock: socket.socket, frame: Json) -> None:
    """Encode and send one frame; socket errors become transport
    errors so callers see one failure taxonomy."""
    try:
        sock.sendall(encode_frame(frame))
    except OSError as exc:
        raise TransportError(f"connection lost sending "
                             f"{frame.get('type')}: {exc}") from None


def recv_frame(sock: socket.socket,
               timeout: float | None = None) -> Json | None:
    """Receive exactly one frame, blocking (the worker side's read).

    Returns None on a clean EOF at a frame boundary (the coordinator
    hung up between frames); raises :class:`TransportError` when the
    stream ends mid-frame — a torn frame must never be half-trusted.
    Raises :class:`socket.timeout` (``TimeoutError``) when ``timeout``
    elapses before the first byte; the worker loop uses that beat to
    send heartbeats.
    """
    sock.settimeout(timeout)
    prefix = _recv_exactly(sock, _PREFIX.size, allow_eof=True)
    if prefix is None:
        return None
    (length,) = _PREFIX.unpack(prefix)
    if length > MAX_FRAME:
        raise TransportError(
            f"frame length prefix {length} exceeds the "
            f"{MAX_FRAME}-byte frame limit")
    body = _recv_exactly(sock, length, allow_eof=False)
    assert body is not None
    try:
        frame = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        raise TransportError("frame body is not valid JSON") from None
    problem = frame_problem(frame)
    if problem is not None:
        raise TransportError(f"corrupt frame: {problem}")
    return frame


def _recv_exactly(sock: socket.socket, count: int,
                  *, allow_eof: bool) -> bytes | None:
    """Read exactly ``count`` bytes, or None on EOF before byte one."""
    data = bytearray()
    while len(data) < count:
        try:
            chunk = sock.recv(count - len(data))
        except socket.timeout:
            if not data:
                raise           # between frames: the heartbeat beat
            raise TransportError(
                "connection timed out mid-frame") from None
        except OSError as exc:
            raise TransportError(f"connection lost: {exc}") from None
        if not chunk:
            if not data and allow_eof:
                return None
            raise TransportError(
                f"connection closed mid-frame ({len(data)} of "
                f"{count} bytes)")
        data.extend(chunk)
    return bytes(data)


def parse_endpoint(text: str) -> tuple[str, int]:
    """Parse the ``HOST:PORT`` grammar of ``--connect``.

    A malformed endpoint is a usage error (exit code 2), not a
    transport failure: nothing was attempted on any network.
    """
    host, sep, port_text = text.rpartition(":")
    if not sep or not host:
        raise EngineError(
            f"bad endpoint {text!r} (expected HOST:PORT)")
    try:
        port = int(port_text)
    except ValueError:
        raise EngineError(
            f"bad endpoint port {port_text!r} in {text!r}") from None
    if not 0 <= port <= 65535:
        raise EngineError(f"endpoint port {port} out of range")
    return host, port


def transport_spec(workers: int) -> str:
    """The manifest (v8) form of a campaign's transport policy.

    ``local`` for in-process / ``multiprocessing`` execution,
    ``tcp:wire=N`` for socket workers. The *wire version* — not the
    worker count — is what resume freezes: worker counts are invisible
    in results (like ``--jobs``), but a run must not silently hop
    between transports whose frame vocabularies could diverge.
    """
    return f"tcp:wire={WIRE_VERSION}" if workers > 0 else "local"
