"""Campaign planning: decompose a SearchConfig into independent jobs.

The decomposition mirrors the serial pipeline exactly — synthesis
chains first, then one optimization chain per (chain index, starting
program) pair — including the per-job seed scheme, so a campaign with
any worker count retraces the same chains the one-process pipeline
would run. Job ids are stable functions of the plan position, which is
what lets a resumed campaign skip exactly the chains it already ran.
"""

from __future__ import annotations

from repro.engine.jobs import ChainJob, OPTIMIZATION, SYNTHESIS
from repro.search.config import SearchConfig
from repro.x86.program import Program

SYNTHESIS_SEED_BASE = 1000
OPTIMIZATION_SEED_BASE = 2000
OPTIMIZATION_CHAIN_STRIDE = 97


def synthesis_jobs(config: SearchConfig) -> list[ChainJob]:
    """Plan the synthesis wave: one job per configured chain."""
    return [
        ChainJob(job_id=f"synth-{chain:03d}", kind=SYNTHESIS,
                 seed=config.seed + SYNTHESIS_SEED_BASE + chain)
        for chain in range(config.synthesis_chains)
    ]


def optimization_jobs(config: SearchConfig,
                      starts: list[Program]) -> list[ChainJob]:
    """Plan the optimization wave: chains x starting programs."""
    plan: list[ChainJob] = []
    for chain in range(config.optimization_chains):
        for index, start in enumerate(starts):
            seed = (config.seed + OPTIMIZATION_SEED_BASE +
                    OPTIMIZATION_CHAIN_STRIDE * chain + index)
            plan.append(ChainJob(
                job_id=f"opt-c{chain:03d}-s{index:03d}",
                kind=OPTIMIZATION, seed=seed, start=start))
    return plan
