"""Campaign planning: an incremental job source, one chain at a time.

The decomposition mirrors the serial pipeline exactly — synthesis
chains first, then one optimization chain per (chain index, starting
program) pair — including the per-job seed scheme, so a campaign with
any worker count retraces the same chains the one-process pipeline
would run. Job ids are stable functions of the plan position, which is
what lets a resumed campaign skip exactly the chains it already ran.

Since the adaptive-budget work the optimization wave is *generated*,
not precomputed: :func:`optimization_rounds` yields one chain's jobs at
a time so the campaign can consult its stopping rule between chains and
simply stop consuming the generator once the ranking has stabilized.
:func:`optimization_jobs` (the full plan, used by fixed budgets and
tests) is defined as the concatenation of those rounds, so the two
views can never disagree about ids or seeds.

Since the cross-kernel work a *sweep* of many kernels shares one
worker pool: :func:`interleave_rounds` is the fair-share round-robin
merge of every kernel's round generator — the pure specification of
the grant order the cross-kernel scheduler (:mod:`repro.engine.sweep`)
applies, so no kernel's tail monopolizes the pool while finished
kernels' slots sit idle. (The sweep driver implements the rotation
inline, because real grants are additionally gated by budget
decisions and per-round barriers; this function is the ungated model
it must agree with, and what the docs and tests exercise.)
Interleaving only reorders *grants* across kernels — each kernel's
own rounds keep their plan order, ids, and seeds — which is why an
interleaved campaign is bit-identical to a sequential one.
"""

from __future__ import annotations

from typing import Iterable, Iterator, TypeVar

from repro.engine.jobs import ChainJob, OPTIMIZATION, SYNTHESIS
from repro.search.config import SearchConfig
from repro.x86.program import Program

SYNTHESIS_SEED_BASE = 1000
OPTIMIZATION_SEED_BASE = 2000
OPTIMIZATION_CHAIN_STRIDE = 97


def synthesis_jobs(config: SearchConfig) -> list[ChainJob]:
    """Plan the synthesis wave: one job per configured chain."""
    return [
        ChainJob(job_id=f"synth-{chain:03d}", kind=SYNTHESIS,
                 seed=config.seed + SYNTHESIS_SEED_BASE + chain)
        for chain in range(config.synthesis_chains)
    ]


def optimization_round(config: SearchConfig, starts: list[Program],
                       chain: int) -> list[ChainJob]:
    """One optimization chain's jobs: chain ``chain`` over every start."""
    jobs: list[ChainJob] = []
    for index, start in enumerate(starts):
        seed = (config.seed + OPTIMIZATION_SEED_BASE +
                OPTIMIZATION_CHAIN_STRIDE * chain + index)
        jobs.append(ChainJob(
            job_id=f"opt-c{chain:03d}-s{index:03d}",
            kind=OPTIMIZATION, seed=seed, start=start))
    return jobs


def optimization_rounds(config: SearchConfig,
                        starts: list[Program]) \
        -> Iterator[list[ChainJob]]:
    """Generate the optimization wave chain by chain.

    The campaign consumes rounds until its stopping rule trips (or the
    configured chain count runs out); a round left ungenerated is a
    chain never scheduled.
    """
    for chain in range(config.optimization_chains):
        yield optimization_round(config, starts, chain)


def optimization_jobs(config: SearchConfig,
                      starts: list[Program]) -> list[ChainJob]:
    """The full optimization plan: chains x starting programs."""
    return [job for round_jobs in optimization_rounds(config, starts)
            for job in round_jobs]


Round = TypeVar("Round")


def interleave_rounds(sources: list[tuple[str, Iterable[Round]]]) \
        -> Iterator[tuple[str, Round]]:
    """Round-robin (fair-share) merge of per-kernel round generators.

    Yields ``(kernel, round)`` pairs by cycling through the kernels in
    list order, taking one round from each generator that still has
    one; exhausted kernels drop out of the rotation. Every kernel's
    rounds appear in their original order, so interleaving changes
    *when* a round is granted, never *which* rounds exist — the
    property that keeps interleaved campaigns bit-identical to
    sequential ones.
    """
    active = [(kernel, iter(rounds)) for kernel, rounds in sources]
    while active:
        still_active = []
        for kernel, rounds in active:
            try:
                round_jobs = next(rounds)
            except StopIteration:
                continue
            still_active.append((kernel, rounds))
            yield kernel, round_jobs
        active = still_active
