"""Job executors: same-process for tests and ``jobs=1``, a
``multiprocessing`` pool otherwise (and, behind ``--workers``, the
socket coordinator in :mod:`repro.engine.remote`).

Every executor speaks the same submit/await protocol the cross-kernel
scheduler drives: :meth:`submit` enqueues a wave of jobs for one
kernel, :meth:`next_result` blocks until some submitted job finishes
and returns its ``(kernel, payload)`` pair. Payloads are identical
regardless of executor — workers build them with the same code — which
is what makes worker counts invisible in the final aggregate.

The ``next_result`` contract, identical across every executor (and
pinned for all of them by ``tests/engine/test_executor_contract.py``):

* With nothing submitted and nothing owed, it raises
  :class:`~repro.errors.EngineError` (``"next_result with no submitted
  jobs"``) no matter what ``timeout`` is — calling it is a scheduler
  bug, not a condition to wait out.
* ``timeout=None`` blocks until *some* delivery is ready, however
  long that takes. Deadline-based recovery is the caller's job: pass a
  finite timeout to get :class:`~repro.errors.JobTimeoutError` when
  nothing arrives in time.
* A worker dying (or its job raising) surfaces as
  :class:`~repro.errors.WorkerCrashError` naming the job, and counts
  as that attempt's answer.
* ``close()`` and ``terminate()`` are both idempotent, in either
  order — the KeyboardInterrupt-during-shutdown case.

The executor is shared by *every* kernel of a campaign sweep: contexts
are keyed by kernel name and installed once per worker process, so an
interleaved campaign keeps one warm pool saturated instead of forking
a fresh pool per kernel. ``submit()`` may be called repeatedly: an
incremental-budget campaign submits one chain round at a time, and the
pool persists across rounds and kernels.
"""

from __future__ import annotations

import multiprocessing
import queue
import sys
from collections import deque
from typing import Iterable

from repro.engine import worker
from repro.engine.jobs import ChainJob, job_from_json, job_to_json
from repro.engine.serialize import Json
from repro.engine.worker import CampaignContext
from repro.errors import (EngineError, JobTimeoutError, ReproError,
                          WorkerCrashError)


class SerialExecutor:
    """Runs every job in the calling process, in submission order."""

    def __init__(self, contexts: dict[str, CampaignContext]) -> None:
        self.contexts = contexts
        self._queue: deque[tuple[str, ChainJob]] = deque()

    def submit(self, kernel: str, jobs: Iterable[ChainJob]) -> int:
        added = 0
        for job in jobs:
            self._queue.append((kernel, job))
            added += 1
        return added

    def next_result(self, timeout: float | None = None) \
            -> tuple[str, Json]:
        # serial jobs run synchronously, so a deadline cannot fire
        # mid-job; the timeout parameter exists for protocol parity
        if not self._queue:
            raise EngineError("next_result with no submitted jobs")
        kernel, job = self._queue.popleft()
        return kernel, worker.run_chain_job(self.contexts[kernel], job)

    def close(self) -> None:
        pass

    def terminate(self) -> None:
        pass


# Per-process campaign contexts, installed once by the pool initializer
# so the (identical) contexts are not re-shipped with every job.
_PROCESS_CONTEXTS: dict[str, CampaignContext] | None = None


def _init_process(contexts_json: dict[str, Json]) -> None:
    global _PROCESS_CONTEXTS
    _PROCESS_CONTEXTS = {kernel: worker.context_from_json(payload)
                         for kernel, payload in contexts_json.items()}


def _run_job_in_process(task: tuple[str, Json]) -> tuple[str, Json]:
    assert _PROCESS_CONTEXTS is not None, "pool initializer did not run"
    kernel, job_json = task
    context = _PROCESS_CONTEXTS[kernel]
    try:
        return kernel, worker.run_chain_job(context,
                                            job_from_json(job_json))
    except ReproError:
        # configuration/validation failures are deterministic — a
        # retry would fail identically, so they stay loud
        raise
    except Exception as exc:
        # anything else is treated as the worker dying mid-chain;
        # naming the job makes the failure retryable upstream
        raise WorkerCrashError(
            f"worker failed running {job_json['job_id']}: "
            f"{type(exc).__name__}: {exc}",
            kernel=kernel, job_id=job_json["job_id"]) from exc


class ProcessPoolExecutor:
    """Fans jobs out across a ``multiprocessing`` pool.

    Jobs and results cross the process boundary as plain-JSON payloads;
    the contexts are installed once per worker process by the pool
    initializer. The pool is created lazily so planning errors surface
    before any process is forked. Completed payloads (or worker
    exceptions) land on an in-process queue via the async-result
    callbacks, which is what lets the scheduler interleave grants from
    many kernels while earlier waves are still in flight.
    """

    def __init__(self, contexts: dict[str, CampaignContext],
                 jobs: int) -> None:
        if jobs < 2:
            raise EngineError("ProcessPoolExecutor needs jobs >= 2")
        self.contexts = contexts
        self.jobs = jobs
        self._pool: multiprocessing.pool.Pool | None = None
        self._results: queue.SimpleQueue = queue.SimpleQueue()
        self._outstanding = 0

    def _ensure_pool(self) -> multiprocessing.pool.Pool:
        if self._pool is None:
            # fork is the fast path but is unsafe on macOS (the reason
            # CPython switched its default there to spawn in 3.8)
            methods = multiprocessing.get_all_start_methods()
            method = ("fork" if "fork" in methods and
                      sys.platform != "darwin" else "spawn")
            ctx = multiprocessing.get_context(method)
            contexts_json = {kernel: worker.context_to_json(context)
                             for kernel, context in self.contexts.items()}
            self._pool = ctx.Pool(
                processes=self.jobs,
                initializer=_init_process,
                initargs=(contexts_json,))
        return self._pool

    def submit(self, kernel: str, jobs: Iterable[ChainJob]) -> int:
        pool = self._ensure_pool()
        added = 0
        for job in jobs:
            pool.apply_async(
                _run_job_in_process, ((kernel, job_to_json(job)),),
                callback=self._results.put,
                error_callback=self._results.put)
            added += 1
        self._outstanding += added
        return added

    def next_result(self, timeout: float | None = None) \
            -> tuple[str, Json]:
        if self._outstanding < 1:
            raise EngineError("next_result with no submitted jobs")
        try:
            item = self._results.get(timeout=timeout)
        except queue.Empty:
            raise JobTimeoutError(
                f"no job result within {timeout:g}s") from None
        self._outstanding -= 1
        if isinstance(item, BaseException):
            raise item
        return item

    # Both shutdown paths are idempotent — ``_pool`` is cleared before
    # join returns control, so a second close()/terminate() (or a
    # terminate after close, the KeyboardInterrupt-during-shutdown
    # case) is a no-op instead of an AttributeError.

    def close(self) -> None:
        """Graceful shutdown: lets in-flight jobs finish."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.close()
            pool.join()

    def terminate(self) -> None:
        """Abandon in-flight jobs (error/interrupt shutdown); anything
        already journaled survives for a later --resume."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.terminate()
            pool.join()


def make_executor(contexts: dict[str, CampaignContext],
                  jobs: int, *, workers: int = 0):
    """The right executor for a worker count (``jobs=1`` is serial).

    ``workers > 0`` selects the distributed path instead: a
    :class:`~repro.engine.remote.RemoteExecutor` coordinator that
    spawns that many loopback worker subprocesses (the ``--workers``
    flag; remote hosts join the same coordinator by hand).
    """
    if jobs < 1:
        raise EngineError("jobs must be at least 1")
    if workers > 0:
        if jobs != 1:
            raise EngineError(
                "--workers replaces the local pool; use it with "
                "jobs=1")
        from repro.engine.remote import RemoteExecutor
        return RemoteExecutor(contexts, spawn=workers)
    if jobs == 1:
        return SerialExecutor(contexts)
    return ProcessPoolExecutor(contexts, jobs)
