"""Job executors: same-process for tests and ``jobs=1``, a
``multiprocessing`` pool otherwise.

Both executors consume :class:`ChainJob` lists and yield plain-JSON
result payloads *as jobs complete* (the pool yields in completion
order), so the campaign can journal each result the moment it exists.
Payloads are identical regardless of executor — workers build them with
the same code — which is what makes worker counts invisible in the
final aggregate.

``run()`` may be called repeatedly on one executor: an adaptive-budget
campaign submits the optimization wave one chain round at a time, and
the process pool persists across rounds so workers are not re-forked
per chain.
"""

from __future__ import annotations

import multiprocessing
import sys
from typing import Iterable, Iterator

from repro.engine import worker
from repro.engine.jobs import ChainJob, job_from_json, job_to_json
from repro.engine.serialize import Json
from repro.engine.worker import CampaignContext
from repro.errors import EngineError


class SerialExecutor:
    """Runs every job in the calling process, in plan order."""

    def __init__(self, context: CampaignContext) -> None:
        self.context = context

    def run(self, jobs: Iterable[ChainJob]) -> Iterator[Json]:
        for job in jobs:
            yield worker.run_chain_job(self.context, job)

    def close(self) -> None:
        pass

    def terminate(self) -> None:
        pass


# Per-process campaign context, installed once by the pool initializer
# so the (identical) context is not re-shipped with every job.
_PROCESS_CONTEXT: CampaignContext | None = None


def _init_process(context_json: Json) -> None:
    global _PROCESS_CONTEXT
    _PROCESS_CONTEXT = worker.context_from_json(context_json)


def _run_job_in_process(job_json: Json) -> Json:
    assert _PROCESS_CONTEXT is not None, "pool initializer did not run"
    return worker.run_chain_job(_PROCESS_CONTEXT, job_from_json(job_json))


class ProcessPoolExecutor:
    """Fans jobs out across a ``multiprocessing`` pool.

    Jobs and results cross the process boundary as plain-JSON payloads;
    the context is installed once per worker process by the pool
    initializer. The pool is created lazily so planning errors surface
    before any process is forked.
    """

    def __init__(self, context: CampaignContext, jobs: int) -> None:
        if jobs < 2:
            raise EngineError("ProcessPoolExecutor needs jobs >= 2")
        self.context = context
        self.jobs = jobs
        self._pool: multiprocessing.pool.Pool | None = None

    def _ensure_pool(self) -> multiprocessing.pool.Pool:
        if self._pool is None:
            # fork is the fast path but is unsafe on macOS (the reason
            # CPython switched its default there to spawn in 3.8)
            methods = multiprocessing.get_all_start_methods()
            method = ("fork" if "fork" in methods and
                      sys.platform != "darwin" else "spawn")
            ctx = multiprocessing.get_context(method)
            self._pool = ctx.Pool(
                processes=self.jobs,
                initializer=_init_process,
                initargs=(worker.context_to_json(self.context),))
        return self._pool

    def run(self, jobs: Iterable[ChainJob]) -> Iterator[Json]:
        encoded = [job_to_json(job) for job in jobs]
        if not encoded:
            return
        pool = self._ensure_pool()
        yield from pool.imap_unordered(_run_job_in_process, encoded)

    def close(self) -> None:
        """Graceful shutdown: lets in-flight jobs finish."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def terminate(self) -> None:
        """Abandon in-flight jobs (error/interrupt shutdown); anything
        already journaled survives for a later --resume."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None


Executor = SerialExecutor | ProcessPoolExecutor


def make_executor(context: CampaignContext, jobs: int) -> Executor:
    """The right executor for a worker count (``jobs=1`` is serial)."""
    if jobs < 1:
        raise EngineError("jobs must be at least 1")
    if jobs == 1:
        return SerialExecutor(context)
    return ProcessPoolExecutor(context, jobs)
