"""Distributed campaign execution: a socket coordinator behind the
submit/next_result protocol, and the worker loop it serves.

:class:`RemoteExecutor` is the third executor (after
:class:`~repro.engine.executor.SerialExecutor` and
:class:`~repro.engine.executor.ProcessPoolExecutor`) and speaks the
exact same protocol the sweep driver already drives: ``submit`` queues
a wave of jobs, ``next_result`` blocks for one completion. Behind that
face it is a single-threaded coordinator: it owns a listening TCP
socket, accepts worker connections as they arrive, ships each new
worker the campaign contexts once (the ``context`` frame), and grants
queued jobs to idle workers one at a time. All socket work happens
*inside* ``next_result`` — there are no background threads, so the
executor inherits the driver's sequencing and needs no locks.

Workers join and leave mid-campaign. A connection that dies (EOF,
reset, torn frame) surfaces the jobs it was running as
:class:`~repro.errors.WorkerCrashError` — exactly what a local pool
raises for a dead process — so lost chains flow through the recovery
layer's retry/requeue/quarantine machinery unchanged, and a faulted
distributed run ranks bit-identically to ``--jobs 1``. Silence (a
wedged worker that neither dies nor answers) is the driver's problem
by design: per-job deadlines (``--job-timeout``) fire in
:func:`~repro.engine.sweep.run_campaigns` and re-grant elsewhere, so a
distributed campaign should always set one.

Two bookkeeping rules keep late workers from poisoning the run:

* A job's crash is only surfaced while that worker still *owns* the
  job (``_inflight``). When a deadline re-grants a job to a second
  worker, the first worker's later death is a worker-left notice, not
  a campaign event.
* A crash is never surfaced for a job whose result was already
  delivered (``_delivered``): the driver would see a failure for work
  it already banked.

:func:`run_worker` is the other side: the loop behind ``repro engine
worker --connect HOST:PORT``. It is deliberately thin — connect, send
``hello``, install contexts, then run one granted chain at a time with
:func:`~repro.engine.worker.run_chain_job` (the same function every
other executor uses), heartbeating while idle. A chain that raises is
reported as an ``error`` result and the worker lives on; the
coordinator converts it into a retryable crash.
"""

from __future__ import annotations

import os
import select
import socket
import subprocess
import sys
import time
from collections import deque
from pathlib import Path
from typing import Iterable

from repro.engine import worker
from repro.engine.jobs import ChainJob, job_from_json, job_to_json
from repro.engine.serialize import Json
from repro.engine.transport import (BYE, CONTEXT, GRANT, HEARTBEAT, HELLO,
                                    RESULT, WIRE_VERSION, FrameBuffer,
                                    recv_frame, send_frame)
from repro.engine.worker import CampaignContext
from repro.errors import (EngineError, JobTimeoutError, TransportError,
                          WorkerCrashError)

#: How often the coordinator wakes from ``select`` to notice spawned
#: worker processes dying before (or without) ever connecting.
_POLL = 0.25

#: Per-send socket timeout: a worker whose receive buffer stays full
#: this long is as good as dead, and blocking the whole campaign on
#: its TCP window would turn one sick host into a global stall.
_SEND_TIMEOUT = 30.0

_CHUNK = 65536


class _Link:
    """One connected worker: its socket, reassembly buffer, and the
    job it currently owns (workers run one chain at a time)."""

    __slots__ = ("sock", "buffer", "busy")

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.buffer = FrameBuffer()
        self.busy: tuple[str, str] | None = None


class RemoteExecutor:
    """Coordinates chain jobs over TCP worker connections.

    ``spawn=N`` launches N local worker subprocesses (``repro engine
    worker``) against the coordinator's own address — the loopback
    deployment behind ``--workers N``. With ``spawn=0`` the executor
    only listens: start workers by hand (any host that can reach
    ``self.address``) and they join the running campaign.
    """

    def __init__(self, contexts: dict[str, CampaignContext], *,
                 spawn: int = 0, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        if spawn < 0:
            raise EngineError("spawn must be at least 0")
        self.contexts = contexts
        self._spawn = spawn
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            listener.bind((host, port))
            listener.listen()
        except OSError as exc:
            listener.close()
            raise TransportError(
                f"cannot bind coordinator to {host}:{port}: "
                f"{exc}") from None
        listener.setblocking(False)
        self._listener: socket.socket | None = listener
        #: ``(host, port)`` the coordinator is reachable at; with
        #: ``port=0`` the OS picked a free port, read it from here.
        self.address: tuple[str, int] = listener.getsockname()[:2]
        self._context_json = {name: worker.context_to_json(context)
                              for name, context in contexts.items()}
        self._pending: deque[tuple[str, ChainJob]] = deque()
        self._workers: dict[str, _Link] = {}
        self._joining: dict[socket.socket, FrameBuffer] = {}
        # which worker currently owns each granted-but-undelivered job;
        # a re-grant overwrites the owner, so only the current owner's
        # death surfaces as a crash
        self._inflight: dict[tuple[str, str], str] = {}
        self._deliveries: deque[tuple] = deque()
        self._delivered: set[tuple[str, str]] = set()
        self._completed_counts: dict[str, int] = {}
        #: ("joined", name) / ("left", name, reason) membership
        #: changes, drained by the driver into worker-joined /
        #: worker-left progress events.
        self.notices: deque[tuple] = deque()
        #: Which worker produced the payload most recently returned by
        #: :meth:`next_result`; the driver files per-worker occupancy
        #: under the metrics document's runtime section with it.
        self.last_worker_id: str | None = None
        self._procs: list[subprocess.Popen] = []
        self._name_serial = 0
        self._closed = False

    # -- driver protocol ------------------------------------------------------

    def submit(self, kernel: str, jobs: Iterable[ChainJob]) -> int:
        if self._closed:
            raise EngineError("submit on a closed executor")
        added = 0
        for job in jobs:
            self._pending.append((kernel, job))
            added += 1
        if added and self._spawn and not self._procs:
            # spawn lazily, like the process pool builds its pool on
            # first submit: planning errors surface before any fork
            self._spawn_workers()
        self._dispatch()
        return added

    def next_result(self, timeout: float | None = None) \
            -> tuple[str, Json]:
        if self._closed:
            raise EngineError("next_result on a closed executor")
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        while True:
            if self._deliveries:
                item = self._deliveries.popleft()
                if item[0] == "crash":
                    raise item[1]
                _, kernel, payload, worker_id = item
                self.last_worker_id = worker_id
                return kernel, payload
            if not self._pending and not self._inflight:
                raise EngineError("next_result with no submitted jobs")
            self._assert_spawned_alive()
            wait = _POLL
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise JobTimeoutError(
                        f"no job result within {timeout:g}s")
                wait = min(wait, remaining)
            assert self._listener is not None
            sockets = ([self._listener]
                       + [link.sock for link in self._workers.values()]
                       + list(self._joining))
            readable, _, _ = select.select(sockets, [], [], wait)
            for sock in readable:
                if sock is self._listener:
                    self._accept()
                elif sock in self._joining:
                    self._pump_joining(sock)
                else:
                    self._pump(sock)
            self._dispatch()

    def close(self) -> None:
        """Graceful shutdown: say goodbye, reap spawned workers."""
        self._shutdown(graceful=True)

    def terminate(self) -> None:
        """Abandon everything in flight (error/interrupt shutdown);
        anything already journaled survives for a later --resume."""
        self._shutdown(graceful=False)

    def _shutdown(self, *, graceful: bool) -> None:
        if self._closed:
            return
        self._closed = True
        if not graceful:
            for proc in self._procs:
                if proc.poll() is None:
                    proc.kill()
        for link in self._workers.values():
            if graceful:
                try:
                    send_frame(link.sock, {"type": BYE})
                except TransportError:
                    pass
            try:
                link.sock.close()
            except OSError:
                pass
        self._workers.clear()
        for sock in self._joining:
            try:
                sock.close()
            except OSError:
                pass
        self._joining.clear()
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        for proc in self._procs:
            try:
                proc.wait(timeout=_SEND_TIMEOUT if graceful else 10.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        self._procs = []

    # -- observability --------------------------------------------------------

    def drain_notices(self) -> list[tuple]:
        """Membership changes since the last drain (driver-polled)."""
        notices, self.notices = list(self.notices), deque()
        return notices

    def worker_stats(self) -> dict[str, int]:
        """Chains delivered per worker (departed workers included)."""
        return dict(self._completed_counts)

    # -- worker processes -----------------------------------------------------

    def _spawn_workers(self) -> None:
        host, port = self.address
        env = dict(os.environ)
        # the worker must import the same repro tree the coordinator
        # runs, installed or not — prepend our source root
        src_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = (src_root if not existing else
                             src_root + os.pathsep + existing)
        command = [sys.executable, "-m", "repro.cli", "engine",
                   "worker", "--connect", f"{host}:{port}"]
        for _ in range(self._spawn):
            self._procs.append(subprocess.Popen(command, env=env))

    def _assert_spawned_alive(self) -> None:
        """A campaign whose every spawned worker has exited — with no
        connections left and none joining — would block forever; raise
        the transport failure instead so a supervisor can --resume."""
        if not self._procs or self._workers or self._joining:
            return
        if any(proc.poll() is None for proc in self._procs):
            return
        codes = sorted({proc.returncode for proc in self._procs})
        raise TransportError(
            f"all {len(self._procs)} spawned workers exited "
            f"(exit codes {codes}) with jobs still pending")

    # -- connection handling --------------------------------------------------

    def _accept(self) -> None:
        assert self._listener is not None
        while True:
            try:
                sock, _ = self._listener.accept()
            except (BlockingIOError, OSError):
                return
            sock.settimeout(_SEND_TIMEOUT)
            self._joining[sock] = FrameBuffer()

    def _pump_joining(self, sock: socket.socket) -> None:
        """Advance a connection that has not said hello yet."""
        buffer = self._joining[sock]
        try:
            chunk = sock.recv(_CHUNK)
        except OSError:
            chunk = b""
        if not chunk:
            del self._joining[sock]
            sock.close()
            return
        buffer.feed(chunk)
        try:
            frames = list(buffer.frames())
        except TransportError:
            del self._joining[sock]
            sock.close()
            return
        if not frames:
            return
        del self._joining[sock]
        hello, rest = frames[0], frames[1:]
        name = str(hello.get("worker", "worker"))
        if hello["type"] != HELLO or hello.get("wire") != WIRE_VERSION:
            # a wire-version mismatch costs the worker its connection,
            # never the campaign its life; the membership log records
            # the refusal so the operator can see why nothing joined
            self.notices.append(
                ("left", name,
                 f"refused: wire version "
                 f"{hello.get('wire')!r} != {WIRE_VERSION}"
                 if hello["type"] == HELLO else
                 f"refused: expected hello, got {hello['type']}"))
            sock.close()
            return
        worker_id = self._unique_name(name)
        try:
            send_frame(sock, {"type": CONTEXT, "wire": WIRE_VERSION,
                              "contexts": self._context_json})
        except TransportError:
            sock.close()
            return
        link = _Link(sock)
        self._workers[worker_id] = link
        self._completed_counts.setdefault(worker_id, 0)
        self.notices.append(("joined", worker_id))
        for frame in rest:                  # eager worker, same chunk
            if worker_id not in self._workers:
                break
            self._handle(worker_id, link, frame)

    def _unique_name(self, name: str) -> str:
        if (name not in self._workers
                and name not in self._completed_counts):
            return name
        self._name_serial += 1
        return f"{name}#{self._name_serial}"

    def _pump(self, sock: socket.socket) -> None:
        """Advance one connected worker's stream."""
        worker_id = next((wid for wid, link in self._workers.items()
                          if link.sock is sock), None)
        if worker_id is None:
            return
        link = self._workers[worker_id]
        try:
            chunk = link.sock.recv(_CHUNK)
        except socket.timeout:
            return
        except OSError as exc:
            self._drop(worker_id, f"connection lost: {exc}")
            return
        if not chunk:
            self._drop(worker_id, "connection closed")
            return
        link.buffer.feed(chunk)
        try:
            frames = list(link.buffer.frames())
        except TransportError as exc:
            self._drop(worker_id, str(exc))
            return
        for frame in frames:
            if worker_id not in self._workers:
                break                       # dropped mid-batch
            self._handle(worker_id, link, frame)

    def _handle(self, worker_id: str, link: _Link, frame: Json) -> None:
        kind = frame["type"]
        if kind == HEARTBEAT:
            return
        if kind == BYE:
            self._drop(worker_id, "worker left")
            return
        if kind != RESULT:
            self._drop(worker_id, f"unexpected {kind} frame")
            return
        kernel = frame["kernel"]
        owned, link.busy = link.busy, None
        if "payload" in frame:
            payload = frame["payload"]
            job_id = (payload.get("job_id")
                      if isinstance(payload, dict) else None)
            key = ((kernel, job_id) if isinstance(job_id, str)
                   else owned)
            if key is not None:
                self._delivered.add(key)
                if self._inflight.get(key) == worker_id:
                    del self._inflight[key]
            self._completed_counts[worker_id] = \
                self._completed_counts.get(worker_id, 0) + 1
            self._deliveries.append(
                ("result", kernel, payload, worker_id))
            return
        # an error result: the chain raised on the worker, but the
        # worker itself lives on — surface the same retryable crash a
        # dead pool process would, without losing the connection
        error = frame["error"]
        job_id = error.get("job_id") or (owned[1] if owned else None)
        key = (kernel, job_id) if isinstance(job_id, str) else None
        if key is not None and self._inflight.get(key) == worker_id:
            del self._inflight[key]
        self._deliveries.append(
            ("crash", WorkerCrashError(
                f"worker {worker_id} failed running {job_id}: "
                f"{error.get('message', 'unknown error')}",
                kernel=kernel, job_id=job_id)))

    def _drop(self, worker_id: str, reason: str) -> None:
        link = self._workers.pop(worker_id, None)
        if link is None:
            return
        try:
            link.sock.close()
        except OSError:
            pass
        key = link.busy
        if (key is not None
                and self._inflight.get(key) == worker_id):
            del self._inflight[key]
            if key not in self._delivered:
                kernel, job_id = key
                self._deliveries.append(
                    ("crash", WorkerCrashError(
                        f"worker {worker_id} lost running {job_id}: "
                        f"{reason}", kernel=kernel, job_id=job_id)))
        self.notices.append(("left", worker_id, reason))

    def _dispatch(self) -> None:
        """Grant queued jobs to idle workers, one job per worker."""
        if not self._pending:
            return
        for worker_id, link in list(self._workers.items()):
            if not self._pending:
                return
            if link.busy is not None:
                continue
            kernel, job = self._pending[0]
            try:
                send_frame(link.sock, {"type": GRANT, "kernel": kernel,
                                       "job": job_to_json(job)})
            except TransportError as exc:
                # busy is None, so the drop queues no crash and the
                # job simply waits for the next idle worker
                self._drop(worker_id, f"grant failed: {exc}")
                continue
            self._pending.popleft()
            key = (kernel, job.job_id)
            link.busy = key
            self._inflight[key] = worker_id
            self._delivered.discard(key)


def run_worker(host: str, port: int, *, heartbeat: float = 5.0,
               max_jobs: int | None = None,
               name: str | None = None) -> int:
    """The worker loop behind ``repro engine worker``.

    Connects to a coordinator, installs the campaign contexts it
    sends, then runs granted chains one at a time until the
    coordinator says ``bye``, hangs up, or ``max_jobs`` chains are
    done. Returns the number of chains completed. While idle the
    worker heartbeats every ``heartbeat`` seconds; while running a
    chain it is silent (job-level liveness is the coordinator's
    ``--job-timeout`` deadline, not the heartbeat).
    """
    label = name if name else f"pid-{os.getpid()}"
    try:
        sock = socket.create_connection((host, port), timeout=10.0)
    except OSError as exc:
        raise TransportError(
            f"cannot connect to coordinator at {host}:{port}: "
            f"{exc}") from None
    completed = 0
    try:
        send_frame(sock, {"type": HELLO, "wire": WIRE_VERSION,
                          "worker": label})
        try:
            frame = recv_frame(sock, timeout=60.0)
        except socket.timeout:
            raise TransportError(
                "coordinator sent no context within 60s") from None
        if frame is None:
            # the coordinator hung up without a context — a refused
            # hello (wire mismatch); nothing was granted, clean exit
            return completed
        if frame["type"] != CONTEXT:
            raise TransportError(
                f"expected context frame, got {frame['type']}")
        if frame.get("wire") != WIRE_VERSION:
            raise TransportError(
                f"coordinator speaks wire version {frame.get('wire')}, "
                f"this worker speaks {WIRE_VERSION}")
        contexts = {kernel: worker.context_from_json(payload)
                    for kernel, payload in frame["contexts"].items()}
        while True:
            try:
                frame = recv_frame(sock, timeout=heartbeat)
            except socket.timeout:
                send_frame(sock, {"type": HEARTBEAT})
                continue
            if frame is None or frame["type"] == BYE:
                return completed
            if frame["type"] != GRANT:
                raise TransportError(
                    f"unexpected {frame['type']} frame from "
                    f"coordinator")
            kernel = frame["kernel"]
            job = job_from_json(frame["job"])
            context = contexts.get(kernel)
            if context is None:
                send_frame(sock, {
                    "type": RESULT, "kernel": kernel,
                    "error": {"job_id": job.job_id,
                              "message": f"worker has no context for "
                                         f"kernel {kernel!r}"}})
                continue
            try:
                payload = worker.run_chain_job(context, job)
            except Exception as exc:
                # every failure — deterministic or not — reports as a
                # retryable error result; a poisoned chain exhausts
                # its retries and quarantines instead of taking the
                # whole campaign down with it
                send_frame(sock, {
                    "type": RESULT, "kernel": kernel,
                    "error": {"job_id": job.job_id,
                              "message": f"{type(exc).__name__}: "
                                         f"{exc}"}})
            else:
                send_frame(sock, {"type": RESULT, "kernel": kernel,
                                  "payload": payload})
                completed += 1
            if max_jobs is not None and completed >= max_jobs:
                send_frame(sock, {"type": BYE})
                return completed
    finally:
        try:
            sock.close()
        except OSError:
            pass
