"""Loop-free programs: instruction sequences plus label definitions.

A :class:`Program` is an immutable sequence of instructions together with
a mapping from label names to instruction indices. Only *forward* jumps
are permitted, which guarantees loop freedom — the property the paper's
formulation requires (Section 1). The linked-list benchmark's backward
jump is handled the way the paper handles it: STOKE extracts and
optimizes the loop-free inner fragment (Section 6.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.errors import AsmSyntaxError
from repro.x86.instruction import Instruction, UNUSED, is_unused


@dataclass(frozen=True)
class Program:
    """An immutable loop-free sequence of instructions.

    Attributes:
        code: the instruction sequence, possibly containing UNUSED tokens.
        labels: mapping from label name to the index of the instruction
            the label precedes; a label at the very end maps to len(code).
    """

    code: tuple[Instruction, ...]
    labels: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name, index in self.labels.items():
            if not 0 <= index <= len(self.code):
                raise AsmSyntaxError(f"label {name} out of range")
        for i, instr in enumerate(self.code):
            target = instr.jump_target
            if target is None:
                continue
            if target not in self.labels:
                raise AsmSyntaxError(
                    f"jump to undefined label {target!r} at index {i}")
            if self.labels[target] <= i:
                raise AsmSyntaxError(
                    f"backward jump to {target!r} at index {i}; "
                    "programs must be loop-free")

    # -- basic container protocol ---------------------------------------------

    def __len__(self) -> int:
        return len(self.code)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.code)

    def __getitem__(self, index: int) -> Instruction:
        return self.code[index]

    # -- derived views ----------------------------------------------------------

    @property
    def instruction_count(self) -> int:
        """Number of real (non-UNUSED) instructions."""
        return sum(1 for i in self.code if not is_unused(i))

    def real_instructions(self) -> list[Instruction]:
        return [i for i in self.code if not is_unused(i)]

    def compact(self) -> "Program":
        """A copy with UNUSED tokens removed (labels are preserved)."""
        new_code: list[Instruction] = []
        remap: dict[int, int] = {}
        for i, instr in enumerate(self.code):
            remap[i] = len(new_code)
            if not is_unused(instr):
                new_code.append(instr)
        remap[len(self.code)] = len(new_code)
        labels = {name: remap[idx] for name, idx in self.labels.items()}
        return Program(tuple(new_code), labels)

    def padded(self, length: int) -> "Program":
        """A copy padded with UNUSED tokens to exactly ``length`` slots."""
        if len(self.code) > length:
            raise ValueError(
                f"program has {len(self.code)} instructions; "
                f"cannot pad to {length}")
        pad = (UNUSED,) * (length - len(self.code))
        return Program(self.code + pad, dict(self.labels))

    def replace(self, index: int, instr: Instruction) -> "Program":
        """A copy with the instruction at ``index`` replaced."""
        code = list(self.code)
        code[index] = instr
        return Program(tuple(code), dict(self.labels))

    def swap(self, i: int, j: int) -> "Program":
        """A copy with the instructions at ``i`` and ``j`` exchanged."""
        code = list(self.code)
        code[i], code[j] = code[j], code[i]
        return Program(tuple(code), dict(self.labels))

    def has_jumps(self) -> bool:
        return any(i.is_jump for i in self.code)

    def __str__(self) -> str:
        from repro.x86.printer import format_program
        return format_program(self)


def program(instructions: Iterable[Instruction],
            labels: dict[str, int] | None = None) -> Program:
    """Convenience constructor accepting any iterable of instructions."""
    return Program(tuple(instructions), dict(labels or {}))
