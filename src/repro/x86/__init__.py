"""The 64-bit X86 subset: registers, operands, opcodes, parsing, semantics.

Typical usage::

    from repro.x86 import parse_program
    prog = parse_program('''
        movq rdi, rax
        addq rsi, rax
    ''')
"""

from repro.x86.instruction import Instruction, UNUSED, is_unused
from repro.x86.isa import OPCODES, Opcode, opcode
from repro.x86.latency import instruction_latency, program_latency
from repro.x86.operands import Imm, Label, Mem, Operand, Reg
from repro.x86.parser import parse_instruction, parse_program
from repro.x86.printer import format_instruction, format_program
from repro.x86.program import Program, program
from repro.x86.registers import (FLAG_NAMES, REGISTERS, Register,
                                 gprs_of_width, lookup, view)

__all__ = [
    "FLAG_NAMES", "Imm", "Instruction", "Label", "Mem", "OPCODES",
    "Opcode", "Operand", "Program", "REGISTERS", "Reg", "Register",
    "UNUSED", "format_instruction", "format_program", "gprs_of_width",
    "instruction_latency", "is_unused", "lookup", "opcode",
    "parse_instruction", "parse_program", "program", "program_latency",
    "view",
]
