"""Static instruction latencies: the paper's LATENCY(i) (Eq. 13).

The performance term of the cost function is a *static approximation* of
expected runtime: the sum over instructions of an average latency. Base
latencies live in the opcode table; memory operands add a fixed load or
store penalty, which is what makes the stack-traffic-heavy ``llvm -O0``
code expensive under the heuristic, exactly as in the paper.
"""

from __future__ import annotations

from repro.x86.instruction import Instruction, is_unused
from repro.x86.program import Program

MEM_READ_PENALTY = 3
"""Extra cycles charged for a memory read operand."""

MEM_WRITE_PENALTY = 2
"""Extra cycles charged for a memory write operand."""


_LATENCY_CACHE: dict[int, tuple[Instruction, int]] = {}


def instruction_latency(instr: Instruction) -> int:
    """The average latency LATENCY(i) charged to one instruction.

    Cached by object identity: the cache entry pins the instruction, so
    ids stay unique. Instructions are shared across program snapshots,
    making the cache hit rate in the MCMC inner loop very high.
    """
    cached = _LATENCY_CACHE.get(id(instr))
    if cached is not None:
        return cached[1]
    if is_unused(instr):
        latency = 0
    else:
        latency = instr.opcode.latency
        if instr.reads_memory:
            latency += MEM_READ_PENALTY
        if instr.writes_memory:
            latency += MEM_WRITE_PENALTY
    _LATENCY_CACHE[id(instr)] = (instr, latency)
    return latency


def program_latency(prog: Program) -> int:
    """The paper's H(f): total static latency of a program (Eq. 13)."""
    cache = _LATENCY_CACHE
    total = 0
    for instr in prog.code:
        cached = cache.get(id(instr))
        if cached is not None:
            total += cached[1]
        else:
            total += instruction_latency(instr)
    return total
