"""Value algebras: the operations instruction semantics are written over.

The instruction semantics in :mod:`repro.x86.semantics` are expressed
against the abstract :class:`Algebra` interface. Instantiating them with
:class:`IntAlgebra` yields the concrete emulator; instantiating them with
the bit-vector algebra in :mod:`repro.verifier.symbolic` yields the
symbolic executor used by the validator. Sharing one semantic definition
guarantees the two engines agree — a property the test suite checks
differentially with hypothesis.

All values are width-tagged by convention: operations take the width as
their first argument and must be given operands of that width. Boolean
results (comparisons, flags) are 1-bit values.
"""

from __future__ import annotations

from typing import Protocol, TypeVar

V = TypeVar("V")


class Algebra(Protocol[V]):
    """Operations over ``width``-bit two's-complement bit vectors."""

    def const(self, width: int, value: int) -> V: ...

    # arithmetic
    def add(self, width: int, a: V, b: V) -> V: ...
    def sub(self, width: int, a: V, b: V) -> V: ...
    def mul(self, width: int, a: V, b: V) -> V: ...
    def neg(self, width: int, a: V) -> V: ...

    # division (callers guarantee a nonzero divisor; the symbolic algebra
    # may refuse these — wide division is validated as an uninterpreted
    # function, mirroring the paper's STP usage in Section 5.2)
    def udiv(self, width: int, a: V, b: V) -> V: ...
    def urem(self, width: int, a: V, b: V) -> V: ...
    def sdiv(self, width: int, a: V, b: V) -> V: ...
    def srem(self, width: int, a: V, b: V) -> V: ...

    # bitwise
    def and_(self, width: int, a: V, b: V) -> V: ...
    def or_(self, width: int, a: V, b: V) -> V: ...
    def xor(self, width: int, a: V, b: V) -> V: ...
    def not_(self, width: int, a: V) -> V: ...

    # shifts (count is a ``width``-bit value; counts >= width yield 0 for
    # shl/lshr and sign-fill for ashr, i.e. SMT-LIB semantics)
    def shl(self, width: int, a: V, count: V) -> V: ...
    def lshr(self, width: int, a: V, count: V) -> V: ...
    def ashr(self, width: int, a: V, count: V) -> V: ...

    # comparisons -> 1-bit values
    def eq(self, width: int, a: V, b: V) -> V: ...
    def ult(self, width: int, a: V, b: V) -> V: ...
    def slt(self, width: int, a: V, b: V) -> V: ...

    # structure
    def ite(self, width: int, cond: V, then: V, otherwise: V) -> V: ...
    def extract(self, hi: int, lo: int, a: V) -> V: ...
    def concat(self, hi_width: int, hi: V, lo_width: int, lo: V) -> V: ...
    def zext(self, from_width: int, to_width: int, a: V) -> V: ...
    def sext(self, from_width: int, to_width: int, a: V) -> V: ...

    # counting
    def popcount(self, width: int, a: V) -> V: ...


def mask(width: int) -> int:
    return (1 << width) - 1


def to_signed(width: int, value: int) -> int:
    """Interpret an unsigned ``width``-bit value as two's complement."""
    sign_bit = 1 << (width - 1)
    return (value & mask(width)) - ((value & sign_bit) << 1)


def to_unsigned(width: int, value: int) -> int:
    return value & mask(width)


class IntAlgebra:
    """The concrete algebra: values are Python ints masked to width."""

    def const(self, width: int, value: int) -> int:
        return value & mask(width)

    # -- arithmetic -----------------------------------------------------------

    def add(self, width: int, a: int, b: int) -> int:
        return (a + b) & mask(width)

    def sub(self, width: int, a: int, b: int) -> int:
        return (a - b) & mask(width)

    def mul(self, width: int, a: int, b: int) -> int:
        return (a * b) & mask(width)

    def neg(self, width: int, a: int) -> int:
        return (-a) & mask(width)

    # -- division (truncating toward zero, as x86 div/idiv do) -----------------

    def udiv(self, width: int, a: int, b: int) -> int:
        return a // b

    def urem(self, width: int, a: int, b: int) -> int:
        return a % b

    def sdiv(self, width: int, a: int, b: int) -> int:
        sa, sb = to_signed(width, a), to_signed(width, b)
        quotient = abs(sa) // abs(sb)
        if (sa < 0) != (sb < 0):
            quotient = -quotient
        return quotient & mask(width)

    def srem(self, width: int, a: int, b: int) -> int:
        sa, sb = to_signed(width, a), to_signed(width, b)
        remainder = abs(sa) % abs(sb)
        if sa < 0:
            remainder = -remainder
        return remainder & mask(width)

    # -- bitwise ---------------------------------------------------------------

    def and_(self, width: int, a: int, b: int) -> int:
        return a & b

    def or_(self, width: int, a: int, b: int) -> int:
        return a | b

    def xor(self, width: int, a: int, b: int) -> int:
        return a ^ b

    def not_(self, width: int, a: int) -> int:
        return ~a & mask(width)

    # -- shifts ------------------------------------------------------------------

    def shl(self, width: int, a: int, count: int) -> int:
        if count >= width:
            return 0
        return (a << count) & mask(width)

    def lshr(self, width: int, a: int, count: int) -> int:
        if count >= width:
            return 0
        return a >> count

    def ashr(self, width: int, a: int, count: int) -> int:
        signed = to_signed(width, a)
        count = min(count, width - 1)
        return (signed >> count) & mask(width)

    # -- comparisons ---------------------------------------------------------------

    def eq(self, width: int, a: int, b: int) -> int:
        return 1 if a == b else 0

    def ult(self, width: int, a: int, b: int) -> int:
        return 1 if a < b else 0

    def slt(self, width: int, a: int, b: int) -> int:
        return 1 if to_signed(width, a) < to_signed(width, b) else 0

    # -- structure -----------------------------------------------------------------

    def ite(self, width: int, cond: int, then: int, otherwise: int) -> int:
        return then if cond else otherwise

    def extract(self, hi: int, lo: int, a: int) -> int:
        return (a >> lo) & mask(hi - lo + 1)

    def concat(self, hi_width: int, hi: int, lo_width: int, lo: int) -> int:
        return (hi << lo_width) | lo

    def zext(self, from_width: int, to_width: int, a: int) -> int:
        return a

    def sext(self, from_width: int, to_width: int, a: int) -> int:
        return to_signed(from_width, a) & mask(to_width)

    # -- counting ----------------------------------------------------------------------

    def popcount(self, width: int, a: int) -> int:
        return a.bit_count()


INT_ALGEBRA = IntAlgebra()
"""Shared stateless instance of the concrete algebra."""
