"""Parser for the assembly dialect used in the paper's listings.

The dialect is AT&T-flavored but without ``%``/``$`` sigils::

    .set c1 0x100000000     # named constant
    .L0                     # label
    movq rsi, r9            # source-first operand order
    shrq 32, rsi            # immediate shift count
    andl c1, r9d            # named constant as immediate
    leaq (rsi,rcx,4), r8    # memory operand disp(base,index,scale)
    jae .L2                 # forward jump
    movd edi, xmm0          # SSE

Mnemonics may appear without a width suffix (``mov ecx, ecx``); the
parser infers the suffix from register operand widths, exactly as an
assembler would.
"""

from __future__ import annotations

import re

from repro.errors import AsmSyntaxError, UnknownOpcodeError
from repro.x86.instruction import Instruction
from repro.x86.isa import OPCODES, opcode
from repro.x86.operands import Imm, Label, Mem, Operand, Reg
from repro.x86.program import Program
from repro.x86.registers import RegClass, is_register_name, lookup

_MEM_RE = re.compile(
    r"^(?P<disp>[^()]*)\(\s*(?P<base>[a-z0-9]+)?\s*"
    r"(?:,\s*(?P<index>[a-z0-9]+)\s*(?:,\s*(?P<scale>[1248]))?)?\s*\)$")
_LABEL_RE = re.compile(r"^\.[A-Za-z_][A-Za-z0-9_]*$")
_INT_RE = re.compile(r"^-?(0[xX][0-9a-fA-F]+|\d+)$")

_WIDTH_SUFFIX = {8: "b", 16: "w", 32: "l", 64: "q"}


def _parse_int(text: str, constants: dict[str, int]) -> int:
    text = text.strip()
    if text in constants:
        return constants[text]
    if _INT_RE.match(text):
        return int(text, 0)
    raise AsmSyntaxError(f"cannot parse integer {text!r}")


def _split_operands(text: str) -> list[str]:
    """Split an operand list on commas not nested inside parentheses."""
    parts: list[str] = []
    depth = 0
    current = []
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def _parse_operand(text: str, constants: dict[str, int]) -> Operand:
    text = text.strip()
    if not text:
        raise AsmSyntaxError("empty operand")
    if is_register_name(text):
        return Reg(lookup(text))
    if _LABEL_RE.match(text):
        return Label(text)
    mem = _MEM_RE.match(text)
    if mem is not None:
        disp_text = mem.group("disp").strip()
        disp = _parse_int(disp_text, constants) if disp_text else 0
        base_name = mem.group("base")
        index_name = mem.group("index")
        base = lookup(base_name) if base_name else None
        index = lookup(index_name) if index_name else None
        scale = int(mem.group("scale") or 1)
        return Mem(base=base, index=index, scale=scale, disp=disp)
    return Imm(_parse_int(text, constants))


def _infer_mnemonic(name: str, operands: list[Operand]) -> str:
    """Resolve an unsuffixed or aliased mnemonic to a table entry."""
    xmm = any(isinstance(op, Reg) and op.reg.reg_class is RegClass.XMM
              for op in operands)
    if xmm and name == "movq":
        return "movq_xmm"       # the GPR movq cannot take xmm operands
    if name in OPCODES:
        return name
    if xmm:
        raise UnknownOpcodeError(f"unknown SSE opcode {name!r}")
    widths = [op.reg.width for op in operands if isinstance(op, Reg)]
    if widths:
        candidate = name + _WIDTH_SUFFIX[max(widths)]
        if candidate in OPCODES:
            return candidate
    raise UnknownOpcodeError(f"unknown opcode {name!r}")


def parse_instruction(line: str,
                      constants: dict[str, int] | None = None) -> Instruction:
    """Parse a single instruction line."""
    constants = constants or {}
    line = line.split("#", 1)[0].strip()
    if not line:
        raise AsmSyntaxError("empty instruction line")
    parts = line.split(None, 1)
    name = parts[0]
    operand_text = parts[1] if len(parts) > 1 else ""
    operands = tuple(_parse_operand(t, constants)
                     for t in _split_operands(operand_text))
    mnemonic = _infer_mnemonic(name, list(operands))
    return Instruction(opcode(mnemonic), operands)


def parse_program(text: str) -> Program:
    """Parse a full program listing into a :class:`Program`.

    Raises:
        AsmSyntaxError: on malformed lines, unknown opcodes or operands,
            undefined jump targets, or backward jumps.
    """
    constants: dict[str, int] = {}
    instructions: list[Instruction] = []
    labels: dict[str, int] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith(".set"):
            parts = line.split()
            if len(parts) != 3:
                raise AsmSyntaxError(".set expects a name and a value",
                                     raw, lineno)
            constants[parts[1]] = int(parts[2], 0)
            continue
        if _LABEL_RE.match(line):
            name = line.rstrip(":")
            if name in labels:
                raise AsmSyntaxError(f"duplicate label {name}", raw, lineno)
            labels[name] = len(instructions)
            continue
        if line.endswith(":") and _LABEL_RE.match(line[:-1]):
            labels[line[:-1]] = len(instructions)
            continue
        try:
            instructions.append(parse_instruction(line, constants))
        except AsmSyntaxError as exc:
            if exc.lineno is None:
                raise AsmSyntaxError(str(exc), raw, lineno) from exc
            raise
    return Program(tuple(instructions), labels)
