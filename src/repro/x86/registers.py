"""Register file model for the 64-bit X86 subset.

The model covers the sixteen 64-bit general purpose registers with their
32/16/8-bit views, the sixteen 128-bit SSE registers, and the five status
flags used by the modeled instruction subset.

Sub-register aliasing follows the x86-64 rules that matter to the paper:

* writing a 32-bit view zeroes the upper 32 bits of the full register
  (the ``mov edx, edx`` idiom in Figure 1 relies on this),
* writing a 16-bit or 8-bit view leaves the remaining bits untouched.

High-byte registers (``ah`` .. ``bh``) are intentionally not modeled; they
are rarely produced by compilers and the paper never uses them.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable


class RegClass(Enum):
    """Top-level storage class of a register."""

    GPR = "gpr"
    XMM = "xmm"


@dataclass(frozen=True)
class Register:
    """A named architectural register view.

    Attributes:
        name: the assembly-level name, e.g. ``"eax"`` or ``"r8d"``.
        full: name of the full-width register this view aliases, e.g.
            ``"rax"`` for ``"eax"``.
        width: view width in bits (8, 16, 32, 64 for GPRs; 128 for XMM).
        reg_class: GPR or XMM.
    """

    name: str
    full: str
    width: int
    reg_class: RegClass

    @property
    def is_full(self) -> bool:
        """True if this view covers the entire underlying register."""
        return self.name == self.full

    @property
    def byte_width(self) -> int:
        return self.width // 8

    @property
    def mask(self) -> int:
        """Bit mask selecting this view within the full register."""
        return (1 << self.width) - 1

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


_GPR64 = ["rax", "rbx", "rcx", "rdx", "rsi", "rdi", "rbp", "rsp",
          "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15"]
_GPR32 = ["eax", "ebx", "ecx", "edx", "esi", "edi", "ebp", "esp",
          "r8d", "r9d", "r10d", "r11d", "r12d", "r13d", "r14d", "r15d"]
_GPR16 = ["ax", "bx", "cx", "dx", "si", "di", "bp", "sp",
          "r8w", "r9w", "r10w", "r11w", "r12w", "r13w", "r14w", "r15w"]
_GPR8 = ["al", "bl", "cl", "dl", "sil", "dil", "bpl", "spl",
         "r8b", "r9b", "r10b", "r11b", "r12b", "r13b", "r14b", "r15b"]

FLAG_NAMES = ("CF", "ZF", "SF", "OF", "PF")
"""Status flags modeled by this library (AF is omitted; the modeled
instruction subset never reads it)."""


def _build_register_table() -> dict[str, Register]:
    table: dict[str, Register] = {}
    for i, full in enumerate(_GPR64):
        for width, names in ((64, _GPR64), (32, _GPR32),
                             (16, _GPR16), (8, _GPR8)):
            name = names[i]
            table[name] = Register(name, full, width, RegClass.GPR)
    for i in range(16):
        name = f"xmm{i}"
        table[name] = Register(name, name, 128, RegClass.XMM)
    return table


REGISTERS: dict[str, Register] = _build_register_table()
"""All register views, keyed by assembly name."""

GPR64: tuple[Register, ...] = tuple(REGISTERS[n] for n in _GPR64)
GPR32: tuple[Register, ...] = tuple(REGISTERS[n] for n in _GPR32)
GPR16: tuple[Register, ...] = tuple(REGISTERS[n] for n in _GPR16)
GPR8: tuple[Register, ...] = tuple(REGISTERS[n] for n in _GPR8)
XMM: tuple[Register, ...] = tuple(REGISTERS[f"xmm{i}"] for i in range(16))

_BY_FULL_AND_WIDTH: dict[tuple[str, int], Register] = {
    (r.full, r.width): r for r in REGISTERS.values()
}


def lookup(name: str) -> Register:
    """Return the register named ``name``.

    Raises:
        KeyError: if the name is not a modeled register.
    """
    return REGISTERS[name]


def is_register_name(name: str) -> bool:
    return name in REGISTERS


def view(full: str, width: int) -> Register:
    """Return the ``width``-bit view of the full register ``full``.

    >>> view("rax", 32).name
    'eax'
    """
    return _BY_FULL_AND_WIDTH[(full, width)]


def gprs_of_width(width: int) -> tuple[Register, ...]:
    """All general purpose registers of the given bit width."""
    return {64: GPR64, 32: GPR32, 16: GPR16, 8: GPR8}[width]


def registers_of_width(width: int) -> tuple[Register, ...]:
    """All registers (GPR or XMM) of the given bit width."""
    if width == 128:
        return XMM
    return gprs_of_width(width)


def full_registers(regs: Iterable[Register]) -> set[str]:
    """The set of full-register names underlying the given views."""
    return {r.full for r in regs}
