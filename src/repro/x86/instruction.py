"""Instructions and the UNUSED padding token.

An :class:`Instruction` pairs an :class:`~repro.x86.isa.Opcode` with a
tuple of operands and caches the matched signature, from which register
and flag def/use sets are derived for liveness and dependence analysis.

Candidate rewrites in the search are fixed-length sequences where the
distinguished :data:`UNUSED` token stands for an empty slot (Section 4.3
of the paper), keeping the dimensionality of the search space constant.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.x86 import isa
from repro.x86.isa import Opcode, Slot, check_operands
from repro.x86.operands import Label, Mem, Operand, Reg
from repro.x86.registers import Register


@dataclass(frozen=True)
class Instruction:
    """A single decoded instruction.

    Instances are immutable; the search replaces instructions wholesale
    rather than mutating them in place.
    """

    opcode: Opcode
    operands: tuple[Operand, ...] = ()

    def __post_init__(self) -> None:
        check_operands(self.opcode, self.operands)

    @cached_property
    def signature(self) -> tuple[Slot, ...]:
        return check_operands(self.opcode, self.operands)

    # -- structural queries --------------------------------------------------

    @property
    def is_jump(self) -> bool:
        return self.opcode.is_jump

    @property
    def jump_target(self) -> str | None:
        if not self.opcode.is_jump:
            return None
        (label,) = self.operands
        assert isinstance(label, Label)
        return label.name

    @property
    def is_widening_onearg(self) -> bool:
        """True for the one-operand forms of imul/mul/div/idiv."""
        return self.opcode.family in ("imul", "mul", "div", "idiv") and \
            len(self.operands) == 1

    def _implicit_active(self) -> bool:
        """Implicit rax/rdx uses only apply to one-operand widening forms."""
        if self.opcode.family in ("imul",):
            return self.is_widening_onearg
        return True

    # -- def/use sets ---------------------------------------------------------

    @cached_property
    def regs_read(self) -> frozenset[Register]:
        """Register views read by this instruction (explicit + implicit)."""
        from repro.x86.registers import lookup
        reads: set[Register] = set()
        for op, sl in zip(self.operands, self.signature):
            if isinstance(op, Reg) and "r" in sl.access:
                reads.add(op.reg)
            elif isinstance(op, Mem):
                reads.update(op.registers())
        if self._implicit_active():
            for name in self.opcode.implicit_reads:
                reads.add(lookup(name))
        return frozenset(reads)

    @cached_property
    def regs_written(self) -> frozenset[Register]:
        """Register views written by this instruction."""
        from repro.x86.registers import lookup
        writes: set[Register] = set()
        for op, sl in zip(self.operands, self.signature):
            if isinstance(op, Reg) and "w" in sl.access:
                writes.add(op.reg)
        if self._implicit_active():
            for name in self.opcode.implicit_writes:
                writes.add(lookup(name))
        return frozenset(writes)

    @cached_property
    def mem_operand(self) -> Mem | None:
        """The memory operand, if any (at most one per instruction)."""
        for op in self.operands:
            if isinstance(op, Mem):
                return op
        return None

    @property
    def reads_memory(self) -> bool:
        if self.opcode.family == "lea":
            return False
        mem = self.mem_operand
        if mem is None:
            return False
        for op, sl in zip(self.operands, self.signature):
            if op is mem and "r" in sl.access:
                return True
        return self.opcode.family == "push"

    @property
    def writes_memory(self) -> bool:
        if self.opcode.family == "lea":
            return False
        if self.opcode.family == "push":
            return True
        if self.opcode.family == "pop":
            # pop reads the stack; it writes memory only via a mem operand
            pass
        mem = self.mem_operand
        if mem is None:
            return False
        for op, sl in zip(self.operands, self.signature):
            if op is mem and "w" in sl.access:
                return True
        return False

    @cached_property
    def flags_read(self) -> frozenset[str]:
        return self.opcode.flags_read

    @cached_property
    def flags_written(self) -> frozenset[str]:
        return self.opcode.flags_written | self.opcode.flags_undefined

    def __str__(self) -> str:
        if not self.operands:
            return self.opcode.name
        ops = ", ".join(str(op) for op in self.operands)
        return f"{self.opcode.name} {ops}"


#: Sentinel padding token for fixed-length rewrites (Section 4.3).  It is a
#: real (flagless, effect-free) instruction so sequences containing it can
#: be executed and printed without special cases.
UNUSED = Instruction(isa.opcode("nop"))


def is_unused(instr: Instruction) -> bool:
    return instr.opcode.family == "nop"
