"""Instruction semantics, written once over an abstract value algebra.

The :func:`execute` function interprets one (non-control-flow)
instruction against a :class:`Machine`, using only
:class:`~repro.x86.algebra.Algebra` operations. The concrete emulator
and the symbolic executor both implement :class:`Machine`, so a single
semantic definition drives both — concrete execution and SMT translation
cannot drift apart.

Documented deviations from bare-metal x86 (consistent across both
engines, and therefore harmless to the reproduction):

* shifts and rotates always leave OF undefined (x86 defines OF for
  count == 1 only);
* 8/16-bit shift counts are masked to the operand width rather than
  to 32 bits;
* ``bsf``/``bsr`` of zero write 0 to the destination (x86 leaves the
  destination undefined);
* the AF flag is not modeled.
"""

from __future__ import annotations

from typing import Protocol, TypeVar

from repro.errors import EmulationError, OperandTypeError
from repro.x86.algebra import Algebra
from repro.x86.instruction import Instruction
from repro.x86.operands import Imm, Mem, Operand, Reg
from repro.x86.registers import Register, view

V = TypeVar("V")


class Machine(Protocol[V]):
    """State interface the semantics layer reads and writes.

    Implementations track their own notion of undefined state: the
    emulator counts undef events for Eq. 11; the symbolic executor
    rejects programs whose outputs depend on undefined state.
    """

    alg: Algebra[V]

    def read_full(self, name: str) -> V: ...
    def write_full(self, name: str, value: V) -> None: ...
    def check_reg_defined(self, reg: Register) -> None: ...
    def mark_reg_defined(self, reg: Register) -> None: ...

    def read_flag(self, name: str) -> V: ...
    def write_flag(self, name: str, value: V) -> None: ...
    def set_flag_undefined(self, name: str) -> None: ...

    def read_mem(self, addr: V, nbytes: int) -> V: ...
    def write_mem(self, addr: V, nbytes: int, value: V) -> None: ...

    def fpe(self) -> None:
        """Record a division fault (``#DE``); effects are skipped."""
        ...

    def known_zero(self, width: int, value: V) -> bool | None:
        """True/False when the value is statically known (non)zero."""
        ...


# ---------------------------------------------------------------------------
# register view access (x86 sub-register aliasing rules, shared by engines)
# ---------------------------------------------------------------------------

def read_reg(m: Machine[V], reg: Register) -> V:
    """Read a register view, tracking definedness."""
    m.check_reg_defined(reg)
    full = m.read_full(reg.full)
    if reg.is_full:
        return full
    return m.alg.extract(reg.width - 1, 0, full)


def write_reg(m: Machine[V], reg: Register, value: V) -> None:
    """Write a register view using x86 merge rules.

    32-bit writes zero the upper half of the 64-bit register; 8 and
    16-bit writes merge with the previous contents.
    """
    alg = m.alg
    if reg.is_full:
        m.write_full(reg.full, value)
    elif reg.width == 32:
        m.write_full(reg.full, alg.zext(32, 64, value))
    else:
        old = m.read_full(reg.full)
        high = alg.extract(63, reg.width, old)
        m.write_full(reg.full,
                     alg.concat(64 - reg.width, high, reg.width, value))
    m.mark_reg_defined(reg)


# ---------------------------------------------------------------------------
# operand access
# ---------------------------------------------------------------------------

def effective_address(m: Machine[V], mem: Mem) -> V:
    """Compute ``base + index*scale + disp`` as a 64-bit value."""
    alg = m.alg
    addr = alg.const(64, mem.disp)
    if mem.base is not None:
        if mem.base.width != 64:
            raise OperandTypeError(
                f"address base {mem.base.name} must be 64-bit")
        addr = alg.add(64, addr, read_reg(m, mem.base))
    if mem.index is not None:
        if mem.index.width != 64:
            raise OperandTypeError(
                f"address index {mem.index.name} must be 64-bit")
        scaled = alg.mul(64, read_reg(m, mem.index),
                         alg.const(64, mem.scale))
        addr = alg.add(64, addr, scaled)
    return addr


def read_operand(m: Machine[V], op: Operand, width: int) -> V:
    if isinstance(op, Reg):
        return read_reg(m, op.reg)
    if isinstance(op, Imm):
        return m.alg.const(width, op.value)
    if isinstance(op, Mem):
        return m.read_mem(effective_address(m, op), width // 8)
    raise OperandTypeError(f"cannot read operand {op}")


def write_operand(m: Machine[V], op: Operand, width: int, value: V) -> None:
    if isinstance(op, Reg):
        write_reg(m, op.reg, value)
    elif isinstance(op, Mem):
        m.write_mem(effective_address(m, op), width // 8, value)
    else:
        raise OperandTypeError(f"cannot write operand {op}")


# ---------------------------------------------------------------------------
# flags
# ---------------------------------------------------------------------------

def _msb(alg: Algebra[V], width: int, value: V) -> V:
    return alg.extract(width - 1, width - 1, value)


def _parity_flag(alg: Algebra[V], width: int, value: V) -> V:
    """PF: set when the low byte has an even number of 1 bits."""
    byte = alg.extract(7, 0, value) if width > 8 else value
    count = alg.popcount(8, byte)
    low = alg.extract(0, 0, count)
    return alg.not_(1, low)


def _write_result_flags(m: Machine[V], width: int, result: V) -> None:
    alg = m.alg
    m.write_flag("ZF", alg.eq(width, result, alg.const(width, 0)))
    m.write_flag("SF", _msb(alg, width, result))
    m.write_flag("PF", _parity_flag(alg, width, result))


def cc_value(m: Machine[V], cc: str) -> V:
    """Evaluate a canonical condition code to a 1-bit value."""
    alg = m.alg

    def flag(name: str) -> V:
        return m.read_flag(name)

    def not1(v: V) -> V:
        return alg.not_(1, v)

    if cc == "e":
        return flag("ZF")
    if cc == "ne":
        return not1(flag("ZF"))
    if cc == "a":
        return alg.and_(1, not1(flag("CF")), not1(flag("ZF")))
    if cc == "ae":
        return not1(flag("CF"))
    if cc == "b":
        return flag("CF")
    if cc == "be":
        return alg.or_(1, flag("CF"), flag("ZF"))
    if cc == "g":
        return alg.and_(1, not1(flag("ZF")),
                        alg.eq(1, flag("SF"), flag("OF")))
    if cc == "ge":
        return alg.eq(1, flag("SF"), flag("OF"))
    if cc == "l":
        return alg.xor(1, flag("SF"), flag("OF"))
    if cc == "le":
        return alg.or_(1, flag("ZF"),
                       alg.xor(1, flag("SF"), flag("OF")))
    if cc == "s":
        return flag("SF")
    if cc == "ns":
        return not1(flag("SF"))
    if cc == "o":
        return flag("OF")
    if cc == "no":
        return not1(flag("OF"))
    if cc == "p":
        return flag("PF")
    if cc == "np":
        return not1(flag("PF"))
    raise EmulationError(f"unknown condition code {cc!r}")


# ---------------------------------------------------------------------------
# arithmetic building blocks
# ---------------------------------------------------------------------------

def _add_with_carry(m: Machine[V], width: int, a: V, b: V,
                    carry_in: V | None) -> tuple[V, V, V]:
    """Return (result, CF, OF) of a + b (+ carry)."""
    alg = m.alg
    wide = width + 1
    total = alg.add(wide, alg.zext(width, wide, a),
                    alg.zext(width, wide, b))
    if carry_in is not None:
        total = alg.add(wide, total, alg.zext(1, wide, carry_in))
    result = alg.extract(width - 1, 0, total)
    cf = alg.extract(width, width, total)
    of = _msb(alg, width, alg.and_(width, alg.xor(width, a, result),
                                   alg.xor(width, b, result)))
    return result, cf, of


def _sub_with_borrow(m: Machine[V], width: int, a: V, b: V,
                     borrow_in: V | None) -> tuple[V, V, V]:
    """Return (result, CF, OF) of a - b (- borrow)."""
    alg = m.alg
    wide = width + 1
    total = alg.sub(wide, alg.zext(width, wide, a),
                    alg.zext(width, wide, b))
    if borrow_in is not None:
        total = alg.sub(wide, total, alg.zext(1, wide, borrow_in))
    result = alg.extract(width - 1, 0, total)
    cf = alg.extract(width, width, total)
    of = _msb(alg, width, alg.and_(width, alg.xor(width, a, b),
                                   alg.xor(width, a, result)))
    return result, cf, of


def _tzcnt(alg: Algebra[V], width: int, a: V) -> V:
    """Count trailing zeros; width when a == 0."""
    isolated = alg.and_(width, a, alg.neg(width, a))
    return alg.popcount(width, alg.sub(width, isolated,
                                       alg.const(width, 1)))


def _lzcnt(alg: Algebra[V], width: int, a: V) -> V:
    """Count leading zeros; width when a == 0."""
    x = a
    shift = 1
    while shift < width:
        x = alg.or_(width, x, alg.lshr(width, x, alg.const(width, shift)))
        shift *= 2
    return alg.popcount(width, alg.not_(width, x))


# ---------------------------------------------------------------------------
# the executor
# ---------------------------------------------------------------------------

def execute(instr: Instruction, m: Machine[V]) -> None:
    """Interpret one non-jump instruction against a machine.

    Control transfers (jcc/jmp) are the engine's responsibility; call
    :func:`cc_value` to evaluate their condition and raise here.
    """
    family = instr.opcode.family
    handler = _HANDLERS.get(family)
    if handler is None:
        raise EmulationError(f"no semantics for family {family!r}")
    handler(instr, m)
    for name in instr.opcode.flags_undefined:
        m.set_flag_undefined(name)


def _op_width(instr: Instruction, i: int) -> int:
    return instr.signature[i].width


def _sem_nop(instr: Instruction, m: Machine[V]) -> None:
    return None


def _sem_mov(instr: Instruction, m: Machine[V]) -> None:
    width = instr.opcode.width
    value = read_operand(m, instr.operands[0], width)
    write_operand(m, instr.operands[1], width, value)


def _sem_lea(instr: Instruction, m: Machine[V]) -> None:
    width = instr.opcode.width
    mem = instr.operands[0]
    assert isinstance(mem, Mem)
    addr = effective_address(m, mem)
    value = addr if width == 64 else m.alg.extract(width - 1, 0, addr)
    write_operand(m, instr.operands[1], width, value)


def _sem_movzx(instr: Instruction, m: Machine[V]) -> None:
    src_w = instr.opcode.src_width
    dst_w = instr.opcode.width
    assert src_w is not None
    value = read_operand(m, instr.operands[0], src_w)
    write_operand(m, instr.operands[1], dst_w,
                  m.alg.zext(src_w, dst_w, value))


def _sem_movsx(instr: Instruction, m: Machine[V]) -> None:
    src_w = instr.opcode.src_width
    dst_w = instr.opcode.width
    assert src_w is not None
    value = read_operand(m, instr.operands[0], src_w)
    write_operand(m, instr.operands[1], dst_w,
                  m.alg.sext(src_w, dst_w, value))


def _binary_arith(instr: Instruction, m: Machine[V], *,
                  carry: bool = False, subtract: bool = False,
                  write_back: bool = True) -> None:
    width = instr.opcode.width
    src = read_operand(m, instr.operands[0], width)
    dst = read_operand(m, instr.operands[1], width)
    carry_in = m.read_flag("CF") if carry else None
    if subtract:
        result, cf, of = _sub_with_borrow(m, width, dst, src, carry_in)
    else:
        result, cf, of = _add_with_carry(m, width, dst, src, carry_in)
    m.write_flag("CF", cf)
    m.write_flag("OF", of)
    _write_result_flags(m, width, result)
    if write_back:
        write_operand(m, instr.operands[1], width, result)


def _sem_add(instr: Instruction, m: Machine[V]) -> None:
    _binary_arith(instr, m)


def _sem_adc(instr: Instruction, m: Machine[V]) -> None:
    _binary_arith(instr, m, carry=True)


def _sem_sub(instr: Instruction, m: Machine[V]) -> None:
    _binary_arith(instr, m, subtract=True)


def _sem_sbb(instr: Instruction, m: Machine[V]) -> None:
    _binary_arith(instr, m, subtract=True, carry=True)


def _sem_cmp(instr: Instruction, m: Machine[V]) -> None:
    _binary_arith(instr, m, subtract=True, write_back=False)


def _binary_logic(instr: Instruction, m: Machine[V], op: str, *,
                  write_back: bool = True) -> None:
    alg = m.alg
    width = instr.opcode.width
    src = read_operand(m, instr.operands[0], width)
    dst = read_operand(m, instr.operands[1], width)
    result = getattr(alg, op)(width, src, dst)
    m.write_flag("CF", alg.const(1, 0))
    m.write_flag("OF", alg.const(1, 0))
    _write_result_flags(m, width, result)
    if write_back:
        write_operand(m, instr.operands[1], width, result)


def _sem_and(instr: Instruction, m: Machine[V]) -> None:
    _binary_logic(instr, m, "and_")


def _sem_or(instr: Instruction, m: Machine[V]) -> None:
    _binary_logic(instr, m, "or_")


def _sem_xor(instr: Instruction, m: Machine[V]) -> None:
    # xor r, r is the canonical zeroing idiom: it must not count as a
    # read of an undefined register (and both engines must agree)
    src, dst = instr.operands
    if isinstance(src, Reg) and src == dst:
        alg = m.alg
        width = instr.opcode.width
        zero = alg.const(width, 0)
        m.write_flag("CF", alg.const(1, 0))
        m.write_flag("OF", alg.const(1, 0))
        _write_result_flags(m, width, zero)
        write_operand(m, dst, width, zero)
        return
    _binary_logic(instr, m, "xor")


def _sem_test(instr: Instruction, m: Machine[V]) -> None:
    _binary_logic(instr, m, "and_", write_back=False)


def _sem_not(instr: Instruction, m: Machine[V]) -> None:
    width = instr.opcode.width
    value = read_operand(m, instr.operands[0], width)
    write_operand(m, instr.operands[0], width, m.alg.not_(width, value))


def _sem_neg(instr: Instruction, m: Machine[V]) -> None:
    alg = m.alg
    width = instr.opcode.width
    value = read_operand(m, instr.operands[0], width)
    result = alg.neg(width, value)
    zero = alg.const(width, 0)
    m.write_flag("CF", alg.not_(1, alg.eq(width, value, zero)))
    m.write_flag("OF", _msb(alg, width, alg.and_(width, value, result)))
    _write_result_flags(m, width, result)
    write_operand(m, instr.operands[0], width, result)


def _sem_inc(instr: Instruction, m: Machine[V]) -> None:
    alg = m.alg
    width = instr.opcode.width
    value = read_operand(m, instr.operands[0], width)
    result, _cf, of = _add_with_carry(m, width, value,
                                      alg.const(width, 1), None)
    m.write_flag("OF", of)
    _write_result_flags(m, width, result)
    write_operand(m, instr.operands[0], width, result)


def _sem_dec(instr: Instruction, m: Machine[V]) -> None:
    alg = m.alg
    width = instr.opcode.width
    value = read_operand(m, instr.operands[0], width)
    result, _cf, of = _sub_with_borrow(m, width, value,
                                       alg.const(width, 1), None)
    m.write_flag("OF", of)
    _write_result_flags(m, width, result)
    write_operand(m, instr.operands[0], width, result)


# -- multiplication and division -------------------------------------------

def _sem_imul(instr: Instruction, m: Machine[V]) -> None:
    alg = m.alg
    width = instr.opcode.width
    if len(instr.operands) == 2:
        src = read_operand(m, instr.operands[0], width)
        dst = read_operand(m, instr.operands[1], width)
        wide = 2 * width
        full = alg.mul(wide, alg.sext(width, wide, src),
                       alg.sext(width, wide, dst))
        result = alg.extract(width - 1, 0, full)
        overflow = alg.not_(
            1, alg.eq(wide, full, alg.sext(width, wide, result)))
        m.write_flag("CF", overflow)
        m.write_flag("OF", overflow)
        write_operand(m, instr.operands[1], width, result)
        return
    _widening_mul(instr, m, signed=True)


def _sem_mul(instr: Instruction, m: Machine[V]) -> None:
    _widening_mul(instr, m, signed=False)


def _widening_mul(instr: Instruction, m: Machine[V], *,
                  signed: bool) -> None:
    alg = m.alg
    width = instr.opcode.width
    wide = 2 * width
    ext = alg.sext if signed else alg.zext
    a = read_reg(m, view("rax", width))
    b = read_operand(m, instr.operands[0], width)
    full = alg.mul(wide, ext(width, wide, a), ext(width, wide, b))
    low = alg.extract(width - 1, 0, full)
    high = alg.extract(wide - 1, width, full)
    if signed:
        overflow = alg.not_(
            1, alg.eq(wide, full, alg.sext(width, wide, low)))
    else:
        overflow = alg.not_(
            1, alg.eq(width, high, alg.const(width, 0)))
    m.write_flag("CF", overflow)
    m.write_flag("OF", overflow)
    if width == 8:
        write_reg(m, view("rax", 16), alg.extract(15, 0, full))
    else:
        write_reg(m, view("rax", width), low)
        write_reg(m, view("rdx", width), high)


def _sem_div(instr: Instruction, m: Machine[V]) -> None:
    _division(instr, m, signed=False)


def _sem_idiv(instr: Instruction, m: Machine[V]) -> None:
    _division(instr, m, signed=True)


def _division(instr: Instruction, m: Machine[V], *, signed: bool) -> None:
    alg = m.alg
    width = instr.opcode.width
    divisor = read_operand(m, instr.operands[0], width)
    if m.known_zero(width, divisor):
        m.fpe()
        return
    low = read_reg(m, view("rax", width))
    high = read_reg(m, view("rdx", width))
    wide = 2 * width
    dividend = alg.concat(width, high, width, low)
    wide_divisor = (alg.sext if signed else alg.zext)(width, wide, divisor)
    if signed:
        quotient = alg.sdiv(wide, dividend, wide_divisor)
        remainder = alg.srem(wide, dividend, wide_divisor)
        fits = alg.eq(wide, quotient,
                      alg.sext(width, wide,
                               alg.extract(width - 1, 0, quotient)))
    else:
        quotient = alg.udiv(wide, dividend, wide_divisor)
        remainder = alg.urem(wide, dividend, wide_divisor)
        fits = alg.eq(width, alg.extract(wide - 1, width, quotient),
                      alg.const(width, 0))
    if m.known_zero(1, fits):
        m.fpe()
        return
    write_reg(m, view("rax", width), alg.extract(width - 1, 0, quotient))
    write_reg(m, view("rdx", width), alg.extract(width - 1, 0, remainder))


def _sem_sextax(instr: Instruction, m: Machine[V]) -> None:
    width = instr.opcode.width
    half = width // 2
    low = read_reg(m, view("rax", half))
    write_reg(m, view("rax", width), m.alg.sext(half, width, low))


def _sem_sextdx(instr: Instruction, m: Machine[V]) -> None:
    alg = m.alg
    width = instr.opcode.width
    value = read_reg(m, view("rax", width))
    sign = _msb(alg, width, value)
    write_reg(m, view("rdx", width),
              alg.ite(width, sign,
                      alg.const(width, (1 << width) - 1),
                      alg.const(width, 0)))


# -- shifts and rotates ------------------------------------------------------

def _shift_count(instr: Instruction, m: Machine[V]) -> V:
    """Read and mask the shift count to the operand width."""
    alg = m.alg
    width = instr.opcode.width
    if len(instr.operands) == 1:
        return alg.const(width, 1)
    raw = read_operand(m, instr.operands[0], 8)
    count = alg.zext(8, width, raw)
    return alg.and_(width, count, alg.const(width, width - 1)) \
        if width < 64 else alg.and_(width, count, alg.const(width, 63))


def _conditional_flags(m: Machine[V], width: int, count: V,
                       updates: dict[str, V]) -> None:
    """Write flags unless the shift count is zero (x86 rule)."""
    alg = m.alg
    known = m.known_zero(width, count)
    if known is True:
        return
    if known is False:
        for name, value in updates.items():
            m.write_flag(name, value)
        return
    is_zero = alg.eq(width, count, alg.const(width, 0))
    for name, value in updates.items():
        old = m.read_flag(name)
        m.write_flag(name, alg.ite(1, is_zero, old, value))


def _sem_shift(instr: Instruction, m: Machine[V], kind: str) -> None:
    alg = m.alg
    width = instr.opcode.width
    count = _shift_count(instr, m)
    dst_index = len(instr.operands) - 1
    value = read_operand(m, instr.operands[dst_index], width)
    one = alg.const(width, 1)
    if kind == "shl":
        result = alg.shl(width, value, count)
        cf_src = alg.lshr(width, value,
                          alg.sub(width, alg.const(width, width), count))
        cf = alg.extract(0, 0, cf_src)
    elif kind == "shr":
        result = alg.lshr(width, value, count)
        cf = alg.extract(0, 0, alg.lshr(width, value,
                                        alg.sub(width, count, one)))
    else:  # sar
        result = alg.ashr(width, value, count)
        cf = alg.extract(0, 0, alg.ashr(width, value,
                                        alg.sub(width, count, one)))
    zero = alg.const(width, 0)
    updates = {
        "CF": cf,
        "ZF": alg.eq(width, result, zero),
        "SF": _msb(alg, width, result),
        "PF": _parity_flag(alg, width, result),
    }
    _conditional_flags(m, width, count, updates)
    write_operand(m, instr.operands[dst_index], width, result)


def _sem_shl(instr: Instruction, m: Machine[V]) -> None:
    _sem_shift(instr, m, "shl")


def _sem_shr(instr: Instruction, m: Machine[V]) -> None:
    _sem_shift(instr, m, "shr")


def _sem_sar(instr: Instruction, m: Machine[V]) -> None:
    _sem_shift(instr, m, "sar")


def _sem_rotate(instr: Instruction, m: Machine[V], left: bool) -> None:
    alg = m.alg
    width = instr.opcode.width
    count = _shift_count(instr, m)
    dst_index = len(instr.operands) - 1
    value = read_operand(m, instr.operands[dst_index], width)
    inverse = alg.sub(width, alg.const(width, width), count)
    if left:
        result = alg.or_(width, alg.shl(width, value, count),
                         alg.lshr(width, value, inverse))
        cf = alg.extract(0, 0, result)
    else:
        result = alg.or_(width, alg.lshr(width, value, count),
                         alg.shl(width, value, inverse))
        cf = _msb(alg, width, result)
    _conditional_flags(m, width, count, {"CF": cf})
    write_operand(m, instr.operands[dst_index], width, result)


def _sem_rol(instr: Instruction, m: Machine[V]) -> None:
    _sem_rotate(instr, m, left=True)


def _sem_ror(instr: Instruction, m: Machine[V]) -> None:
    _sem_rotate(instr, m, left=False)


# -- bit counting ----------------------------------------------------------

def _sem_popcnt(instr: Instruction, m: Machine[V]) -> None:
    alg = m.alg
    width = instr.opcode.width
    src = read_operand(m, instr.operands[0], width)
    result = alg.popcount(width, src)
    zero1 = alg.const(1, 0)
    m.write_flag("ZF", alg.eq(width, src, alg.const(width, 0)))
    for name in ("CF", "OF", "SF", "PF"):
        m.write_flag(name, zero1)
    write_operand(m, instr.operands[1], width, result)


def _count_family(instr: Instruction, m: Machine[V], fn, *,
                  carry_on_zero: bool) -> None:
    alg = m.alg
    width = instr.opcode.width
    src = read_operand(m, instr.operands[0], width)
    result = fn(alg, width, src)
    src_zero = alg.eq(width, src, alg.const(width, 0))
    if carry_on_zero:
        m.write_flag("CF", src_zero)
        m.write_flag("ZF", alg.eq(width, result, alg.const(width, 0)))
    else:
        m.write_flag("ZF", src_zero)
        result = alg.ite(width, src_zero, alg.const(width, 0), result)
    write_operand(m, instr.operands[1], width, result)


def _sem_tzcnt(instr: Instruction, m: Machine[V]) -> None:
    _count_family(instr, m, _tzcnt, carry_on_zero=True)


def _sem_lzcnt(instr: Instruction, m: Machine[V]) -> None:
    _count_family(instr, m, _lzcnt, carry_on_zero=True)


def _sem_bsf(instr: Instruction, m: Machine[V]) -> None:
    _count_family(instr, m, _tzcnt, carry_on_zero=False)


def _sem_bsr(instr: Instruction, m: Machine[V]) -> None:
    def _bsr(alg: Algebra[V], width: int, a: V) -> V:
        lz = _lzcnt(alg, width, a)
        return alg.sub(width, alg.const(width, width - 1), lz)
    _count_family(instr, m, _bsr, carry_on_zero=False)


# -- conditional moves, sets --------------------------------------------------

def _sem_cmov(instr: Instruction, m: Machine[V]) -> None:
    alg = m.alg
    width = instr.opcode.width
    assert instr.opcode.cc is not None
    cond = cc_value(m, instr.opcode.cc)
    src = read_operand(m, instr.operands[0], width)
    dst = read_operand(m, instr.operands[1], width)
    write_operand(m, instr.operands[1], width,
                  alg.ite(width, cond, src, dst))


def _sem_set(instr: Instruction, m: Machine[V]) -> None:
    alg = m.alg
    assert instr.opcode.cc is not None
    cond = cc_value(m, instr.opcode.cc)
    write_operand(m, instr.operands[0], 8, alg.zext(1, 8, cond))


# -- stack ----------------------------------------------------------------------

def _sem_push(instr: Instruction, m: Machine[V]) -> None:
    alg = m.alg
    width = instr.opcode.width
    value = read_operand(m, instr.operands[0], width)
    rsp = read_reg(m, view("rsp", 64))
    new_rsp = alg.sub(64, rsp, alg.const(64, width // 8))
    m.write_mem(new_rsp, width // 8, value)
    write_reg(m, view("rsp", 64), new_rsp)


def _sem_pop(instr: Instruction, m: Machine[V]) -> None:
    alg = m.alg
    width = instr.opcode.width
    rsp = read_reg(m, view("rsp", 64))
    value = m.read_mem(rsp, width // 8)
    write_reg(m, view("rsp", 64),
              alg.add(64, rsp, alg.const(64, width // 8)))
    write_operand(m, instr.operands[0], width, value)


def _sem_xchg(instr: Instruction, m: Machine[V]) -> None:
    width = instr.opcode.width
    a = read_operand(m, instr.operands[0], width)
    b = read_operand(m, instr.operands[1], width)
    write_operand(m, instr.operands[0], width, b)
    write_operand(m, instr.operands[1], width, a)


# -- SSE --------------------------------------------------------------------------

def _sem_movd(instr: Instruction, m: Machine[V]) -> None:
    _sse_move(instr, m, 32)


def _sem_movq_xmm(instr: Instruction, m: Machine[V]) -> None:
    _sse_move(instr, m, 64)


def _sse_move(instr: Instruction, m: Machine[V], narrow: int) -> None:
    alg = m.alg
    src, dst = instr.operands
    src_w = instr.signature[0].width
    dst_w = instr.signature[1].width
    value = read_operand(m, src, src_w)
    if dst_w == 128:
        value = alg.zext(narrow, 128, value)
    else:
        value = alg.extract(narrow - 1, 0, value)
    write_operand(m, dst, dst_w, value)


def _sem_movsse(instr: Instruction, m: Machine[V]) -> None:
    value = read_operand(m, instr.operands[0], 128)
    write_operand(m, instr.operands[1], 128, value)


def _dwords(alg: Algebra[V], value: V) -> list[V]:
    return [alg.extract(32 * i + 31, 32 * i, value) for i in range(4)]


def _from_dwords(alg: Algebra[V], dwords: list[V]) -> V:
    result = dwords[0]
    for i in range(1, 4):
        result = alg.concat(32, dwords[i], 32 * i, result)
    return result


def _sem_shufps(instr: Instruction, m: Machine[V]) -> None:
    alg = m.alg
    imm, src_op, dst_op = instr.operands
    assert isinstance(imm, Imm)
    sel = imm.value & 0xFF
    src = _dwords(alg, read_operand(m, src_op, 128))
    dst = _dwords(alg, read_operand(m, dst_op, 128))
    result = [dst[sel & 3], dst[(sel >> 2) & 3],
              src[(sel >> 4) & 3], src[(sel >> 6) & 3]]
    write_operand(m, dst_op, 128, _from_dwords(alg, result))


def _sem_pshufd(instr: Instruction, m: Machine[V]) -> None:
    alg = m.alg
    imm, src_op, dst_op = instr.operands
    assert isinstance(imm, Imm)
    sel = imm.value & 0xFF
    src = _dwords(alg, read_operand(m, src_op, 128))
    result = [src[(sel >> (2 * i)) & 3] for i in range(4)]
    write_operand(m, dst_op, 128, _from_dwords(alg, result))


def _packed_binary(instr: Instruction, m: Machine[V], fn) -> None:
    alg = m.alg
    ew = instr.opcode.elem_width
    assert ew is not None
    src = read_operand(m, instr.operands[0], 128)
    dst = read_operand(m, instr.operands[1], 128)
    lanes = 128 // ew
    result = None
    for i in range(lanes):
        a = alg.extract(ew * i + ew - 1, ew * i, src)
        b = alg.extract(ew * i + ew - 1, ew * i, dst)
        lane = fn(alg, ew, a, b)
        result = lane if result is None else \
            alg.concat(ew, lane, ew * i, result)
    assert result is not None
    write_operand(m, instr.operands[1], 128, result)


def _sem_padd(instr: Instruction, m: Machine[V]) -> None:
    _packed_binary(instr, m, lambda alg, w, a, b: alg.add(w, b, a))


def _sem_psub(instr: Instruction, m: Machine[V]) -> None:
    _packed_binary(instr, m, lambda alg, w, a, b: alg.sub(w, b, a))


def _sem_pmull(instr: Instruction, m: Machine[V]) -> None:
    _packed_binary(instr, m, lambda alg, w, a, b: alg.mul(w, b, a))


def _sem_pand(instr: Instruction, m: Machine[V]) -> None:
    _packed_binary(instr, m, lambda alg, w, a, b: alg.and_(w, b, a))


def _sem_por(instr: Instruction, m: Machine[V]) -> None:
    _packed_binary(instr, m, lambda alg, w, a, b: alg.or_(w, b, a))


def _sem_pxor(instr: Instruction, m: Machine[V]) -> None:
    _packed_binary(instr, m, lambda alg, w, a, b: alg.xor(w, b, a))


def _sem_pmuludq(instr: Instruction, m: Machine[V]) -> None:
    alg = m.alg
    src = read_operand(m, instr.operands[0], 128)
    dst = read_operand(m, instr.operands[1], 128)
    products = []
    for lane in (0, 2):
        a = alg.extract(32 * lane + 31, 32 * lane, src)
        b = alg.extract(32 * lane + 31, 32 * lane, dst)
        products.append(alg.mul(64, alg.zext(32, 64, a),
                                alg.zext(32, 64, b)))
    result = alg.concat(64, products[1], 64, products[0])
    write_operand(m, instr.operands[1], 128, result)


def _packed_shift(instr: Instruction, m: Machine[V], left: bool) -> None:
    alg = m.alg
    ew = instr.opcode.elem_width
    assert ew is not None
    imm = instr.operands[0]
    assert isinstance(imm, Imm)
    count = imm.value & 0xFF
    dst = read_operand(m, instr.operands[1], 128)
    lanes = 128 // ew
    result = None
    for i in range(lanes):
        lane = alg.extract(ew * i + ew - 1, ew * i, dst)
        if count >= ew:
            lane = alg.const(ew, 0)
        elif left:
            lane = alg.shl(ew, lane, alg.const(ew, count))
        else:
            lane = alg.lshr(ew, lane, alg.const(ew, count))
        result = lane if result is None else \
            alg.concat(ew, lane, ew * i, result)
    assert result is not None
    write_operand(m, instr.operands[1], 128, result)


def _sem_psll(instr: Instruction, m: Machine[V]) -> None:
    _packed_shift(instr, m, left=True)


def _sem_psrl(instr: Instruction, m: Machine[V]) -> None:
    _packed_shift(instr, m, left=False)


_HANDLERS = {
    "nop": _sem_nop,
    "mov": _sem_mov,
    "lea": _sem_lea,
    "movzx": _sem_movzx,
    "movsx": _sem_movsx,
    "add": _sem_add,
    "adc": _sem_adc,
    "sub": _sem_sub,
    "sbb": _sem_sbb,
    "cmp": _sem_cmp,
    "and": _sem_and,
    "or": _sem_or,
    "xor": _sem_xor,
    "test": _sem_test,
    "not": _sem_not,
    "neg": _sem_neg,
    "inc": _sem_inc,
    "dec": _sem_dec,
    "imul": _sem_imul,
    "mul": _sem_mul,
    "div": _sem_div,
    "idiv": _sem_idiv,
    "sextax": _sem_sextax,
    "sextdx": _sem_sextdx,
    "shl": _sem_shl,
    "sal": _sem_shl,
    "shr": _sem_shr,
    "sar": _sem_sar,
    "rol": _sem_rol,
    "ror": _sem_ror,
    "popcnt": _sem_popcnt,
    "tzcnt": _sem_tzcnt,
    "lzcnt": _sem_lzcnt,
    "bsf": _sem_bsf,
    "bsr": _sem_bsr,
    "cmov": _sem_cmov,
    "set": _sem_set,
    "push": _sem_push,
    "pop": _sem_pop,
    "xchg": _sem_xchg,
    "movd": _sem_movd,
    "movq_xmm": _sem_movq_xmm,
    "movsse": _sem_movsse,
    "shufps": _sem_shufps,
    "pshufd": _sem_pshufd,
    "padd": _sem_padd,
    "psub": _sem_psub,
    "pmull": _sem_pmull,
    "pmuludq": _sem_pmuludq,
    "pand": _sem_pand,
    "por": _sem_por,
    "pxor": _sem_pxor,
    "psll": _sem_psll,
    "psrl": _sem_psrl,
}
