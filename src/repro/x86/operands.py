"""Operand kinds for the X86 subset: registers, immediates, memory, labels.

Operands are immutable and hashable so instructions can be used as
dictionary keys and deduplicated cheaply by the search.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.x86.registers import Register


class OperandKind(Enum):
    REG = "reg"
    IMM = "imm"
    MEM = "mem"
    LABEL = "label"


@dataclass(frozen=True)
class Operand:
    """Base class for instruction operands."""

    @property
    def kind(self) -> OperandKind:
        raise NotImplementedError


@dataclass(frozen=True)
class Reg(Operand):
    """A register operand."""

    reg: Register

    @property
    def kind(self) -> OperandKind:
        return OperandKind.REG

    @property
    def width(self) -> int:
        return self.reg.width

    def __str__(self) -> str:
        return self.reg.name


@dataclass(frozen=True)
class Imm(Operand):
    """An immediate operand.

    The value is stored as the (possibly negative) integer written in the
    assembly text; width-dependent masking happens at evaluation time.
    """

    value: int

    @property
    def kind(self) -> OperandKind:
        return OperandKind.IMM

    def masked(self, width: int) -> int:
        """The value truncated to ``width`` bits (two's complement)."""
        return self.value & ((1 << width) - 1)

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Mem(Operand):
    """A memory operand ``disp(base, index, scale)``.

    Any of base/index may be absent. ``scale`` is 1, 2, 4 or 8. The access
    width is a property of the instruction, not the operand.
    """

    base: Register | None = None
    index: Register | None = None
    scale: int = 1
    disp: int = 0

    def __post_init__(self) -> None:
        if self.scale not in (1, 2, 4, 8):
            raise ValueError(f"invalid scale {self.scale}")
        if self.base is None and self.index is None:
            raise ValueError("memory operand needs a base or an index")

    @property
    def kind(self) -> OperandKind:
        return OperandKind.MEM

    def registers(self) -> tuple[Register, ...]:
        """Registers read to form the effective address."""
        regs = []
        if self.base is not None:
            regs.append(self.base)
        if self.index is not None:
            regs.append(self.index)
        return tuple(regs)

    def __str__(self) -> str:
        disp = str(self.disp) if self.disp else ""
        inner = self.base.name if self.base else ""
        if self.index is not None:
            inner += f",{self.index.name},{self.scale}"
        return f"{disp}({inner})"


@dataclass(frozen=True)
class Label(Operand):
    """A code label operand (jump target)."""

    name: str

    @property
    def kind(self) -> OperandKind:
        return OperandKind.LABEL

    def __str__(self) -> str:
        return self.name
