"""Formatting of instructions and programs back to the paper's dialect.

``parse_program(format_program(p))`` round-trips for all programs this
library produces, which the test suite checks with property tests.
"""

from __future__ import annotations

from repro.x86.instruction import Instruction, is_unused
from repro.x86.program import Program


def format_instruction(instr: Instruction) -> str:
    return str(instr)


def format_program(prog: Program, *, show_unused: bool = False) -> str:
    """Render a program as text, interleaving label definitions.

    Args:
        prog: the program to format.
        show_unused: include UNUSED padding slots as comments.
    """
    by_index: dict[int, list[str]] = {}
    for name, index in prog.labels.items():
        by_index.setdefault(index, []).append(name)
    lines: list[str] = []
    for i, instr in enumerate(prog.code):
        for name in sorted(by_index.get(i, [])):
            lines.append(name)
        if is_unused(instr):
            if show_unused:
                lines.append("# <unused>")
            continue
        lines.append(f"  {format_instruction(instr)}")
    for name in sorted(by_index.get(len(prog.code), [])):
        lines.append(name)
    return "\n".join(lines)
