"""The instruction set table for the modeled 64-bit X86 subset.

Each :class:`Opcode` describes one mnemonic (e.g. ``addq``): its operand
signatures, operand access modes, flag effects, implicit register uses,
base latency and semantic family. The table is built once at import time
and covers roughly 270 mnemonics across the integer and fixed-point SSE
subsets the paper searches over (Section 4.3: "arithmetic and fixed point
SSE opcodes").

Operand order follows the paper's listings, which use AT&T source-first
order (``addq rdx, rax`` adds ``rdx`` into ``rax``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import OperandTypeError, UnknownOpcodeError
from repro.x86.operands import (Operand, OperandKind, Reg)
from repro.x86.registers import RegClass

R = OperandKind.REG
M = OperandKind.MEM
I = OperandKind.IMM
L = OperandKind.LABEL

#: Condition codes and the flag predicate they denote.  Aliases map to a
#: canonical name so that e.g. ``jz`` and ``je`` share semantics.
CONDITION_CODES: dict[str, str] = {
    "e": "e", "z": "e",
    "ne": "ne", "nz": "ne",
    "a": "a", "nbe": "a",
    "ae": "ae", "nb": "ae", "nc": "ae",
    "b": "b", "c": "b", "nae": "b",
    "be": "be", "na": "be",
    "g": "g", "nle": "g",
    "ge": "ge", "nl": "ge",
    "l": "l", "nge": "l",
    "le": "le", "ng": "le",
    "s": "s", "ns": "ns",
    "o": "o", "no": "no",
    "p": "p", "pe": "p",
    "np": "np", "po": "np",
}

#: Flags read by each canonical condition code.
CC_FLAGS_READ: dict[str, frozenset[str]] = {
    "e": frozenset({"ZF"}), "ne": frozenset({"ZF"}),
    "a": frozenset({"CF", "ZF"}), "ae": frozenset({"CF"}),
    "b": frozenset({"CF"}), "be": frozenset({"CF", "ZF"}),
    "g": frozenset({"ZF", "SF", "OF"}), "ge": frozenset({"SF", "OF"}),
    "l": frozenset({"SF", "OF"}), "le": frozenset({"ZF", "SF", "OF"}),
    "s": frozenset({"SF"}), "ns": frozenset({"SF"}),
    "o": frozenset({"OF"}), "no": frozenset({"OF"}),
    "p": frozenset({"PF"}), "np": frozenset({"PF"}),
}

ALL_FLAGS = frozenset({"CF", "ZF", "SF", "OF", "PF"})
ARITH_FLAGS = ALL_FLAGS
LOGIC_FLAGS = ALL_FLAGS          # CF/OF forced to zero, still *written*
NO_FLAGS: frozenset[str] = frozenset()

_SUFFIX_WIDTH = {"b": 8, "w": 16, "l": 32, "q": 64}
_WIDTH_SUFFIX = {v: k for k, v in _SUFFIX_WIDTH.items()}


@dataclass(frozen=True)
class Slot:
    """One operand position in an instruction signature.

    Attributes:
        kinds: operand kinds accepted at this position.
        width: operand bit width (8..128); for LABEL slots it is 0.
        access: "r", "w" or "rw" — how the instruction uses the operand.
        reg_class: register class accepted when the operand is a register.
    """

    kinds: frozenset[OperandKind]
    width: int
    access: str
    reg_class: RegClass = RegClass.GPR

    def accepts(self, op: Operand) -> bool:
        if op.kind not in self.kinds:
            return False
        if isinstance(op, Reg):
            return op.reg.width == self.width and \
                op.reg.reg_class == self.reg_class
        return True


def slot(kinds: Iterable[OperandKind], width: int, access: str,
         reg_class: RegClass = RegClass.GPR) -> Slot:
    return Slot(frozenset(kinds), width, access, reg_class)


@dataclass(frozen=True)
class Opcode:
    """A single mnemonic in the ISA table.

    Attributes:
        name: the mnemonic with width suffix, e.g. ``"addq"``.
        family: semantic family dispatched on by the executor, e.g. ``"add"``.
        width: principal operation width in bits.
        signatures: alternative operand slot tuples (x86 mnemonics often
            accept several arities/directions).
        latency: base latency in cycles; memory access adds extra
            (see :mod:`repro.x86.latency`).
        flags_read / flags_written / flags_undefined: status flag effects.
            A flag in ``flags_undefined`` is left in an undefined state.
        implicit_reads / implicit_writes: full names of implicitly used
            general purpose registers (e.g. ``mulq`` reads/writes rax, rdx).
        cc: canonical condition code for jcc/setcc/cmovcc families.
        is_jump: True for control transfer instructions.
        uf: True if the symbolic validator treats the result as an
            uninterpreted function (wide multiplication, Section 5.2).
        elem_width: packed element width for SSE integer ops.
        src_width: source operand width for widening moves (movzx/movsx).
    """

    name: str
    family: str
    width: int
    signatures: tuple[tuple[Slot, ...], ...]
    latency: int = 1
    flags_read: frozenset[str] = NO_FLAGS
    flags_written: frozenset[str] = NO_FLAGS
    flags_undefined: frozenset[str] = NO_FLAGS
    implicit_reads: tuple[str, ...] = ()
    implicit_writes: tuple[str, ...] = ()
    cc: str | None = None
    is_jump: bool = False
    uf: bool = False
    elem_width: int | None = None
    src_width: int | None = None

    def match(self, operands: tuple[Operand, ...]) -> tuple[Slot, ...] | None:
        """Return the matching signature for ``operands``, or None."""
        for sig in self.signatures:
            if len(sig) != len(operands):
                continue
            if all(s.accepts(op) for s, op in zip(sig, operands)):
                mem_count = sum(op.kind is OperandKind.MEM for op in operands)
                if mem_count <= 1:
                    return sig
        return None

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


class _TableBuilder:
    """Accumulates opcodes; small helpers cut down table boilerplate."""

    def __init__(self) -> None:
        self.table: dict[str, Opcode] = {}

    def add(self, op: Opcode) -> None:
        if op.name in self.table:
            raise ValueError(f"duplicate opcode {op.name}")
        self.table[op.name] = op

    # -- integer helpers ---------------------------------------------------

    def binary_alu(self, family: str, *, latency: int = 1,
                   flags_read: frozenset[str] = NO_FLAGS,
                   flags_written: frozenset[str] = ARITH_FLAGS,
                   dst_access: str = "rw",
                   widths: Iterable[int] = (8, 16, 32, 64)) -> None:
        """src(r/m/i), dst(r/m) two-operand ALU family, all widths."""
        for w in widths:
            name = family + _WIDTH_SUFFIX[w]
            src = slot({R, M, I}, w, "r")
            dst = slot({R, M}, w, dst_access)
            self.add(Opcode(name, family, w, ((src, dst),), latency=latency,
                            flags_read=flags_read,
                            flags_written=flags_written))

    def unary_alu(self, family: str, *, latency: int = 1,
                  flags_read: frozenset[str] = NO_FLAGS,
                  flags_written: frozenset[str] = ARITH_FLAGS,
                  widths: Iterable[int] = (8, 16, 32, 64)) -> None:
        for w in widths:
            name = family + _WIDTH_SUFFIX[w]
            self.add(Opcode(name, family, w,
                            ((slot({R, M}, w, "rw"),),), latency=latency,
                            flags_read=flags_read,
                            flags_written=flags_written))

    def shift(self, family: str, *, rotates: bool = False,
              widths: Iterable[int] = (8, 16, 32, 64)) -> None:
        """Shift/rotate: count(imm8 or cl) + dst, or implicit-one dst."""
        written = frozenset({"CF", "OF"}) if rotates else \
            frozenset({"CF", "ZF", "SF", "PF"})
        undef = NO_FLAGS if rotates else frozenset({"OF"})
        for w in widths:
            name = family + _WIDTH_SUFFIX[w]
            count = slot({I, R}, 8, "r")
            dst = slot({R, M}, w, "rw")
            self.add(Opcode(name, family, w,
                            ((count, dst), (dst,)),
                            flags_written=written, flags_undefined=undef))

    def widening_move(self, family: str, sign: str) -> None:
        """movz/movs with explicit source and destination widths."""
        pairs = [(8, 16), (8, 32), (8, 64), (16, 32), (16, 64)]
        if sign == "s":
            pairs.append((32, 64))
        for sw, dw in pairs:
            if sign == "s" and (sw, dw) == (32, 64):
                name = "movslq"   # AT&T spelling for 32->64 sign extension
            else:
                name = f"mov{sign}{_WIDTH_SUFFIX[sw]}{_WIDTH_SUFFIX[dw]}"
            src = slot({R, M}, sw, "r")
            dst = slot({R}, dw, "w")
            self.add(Opcode(name, family, dw, ((src, dst),),
                            src_width=sw))

    def sse_binary(self, name: str, family: str, *, latency: int = 1,
                   elem_width: int | None = None) -> None:
        """xmm/m128 src, xmm dst packed binary operation."""
        src = slot({R, M}, 128, "r", RegClass.XMM)
        dst = slot({R}, 128, "rw", RegClass.XMM)
        self.add(Opcode(name, family, 128, ((src, dst),), latency=latency,
                        elem_width=elem_width))


def _build_table() -> dict[str, Opcode]:
    b = _TableBuilder()

    # --- data movement ----------------------------------------------------
    for w in (8, 16, 32, 64):
        name = "mov" + _WIDTH_SUFFIX[w]
        src = slot({R, M, I}, w, "r")
        dst = slot({R, M}, w, "w")
        b.add(Opcode(name, "mov", w, ((src, dst),)))
    b.add(Opcode("movabsq", "mov", 64,
                 ((slot({I}, 64, "r"), slot({R}, 64, "w")),)))
    for w in (16, 32, 64):
        name = "lea" + _WIDTH_SUFFIX[w]
        b.add(Opcode(name, "lea", w,
                     ((slot({M}, w, "addr"), slot({R}, w, "w")),)))
    b.widening_move("movzx", "z")
    b.widening_move("movsx", "s")
    for w, name in ((64, "pushq"), (16, "pushw")):
        b.add(Opcode(name, "push", w, ((slot({R, M, I}, w, "r"),),),
                     latency=2, implicit_reads=("rsp",),
                     implicit_writes=("rsp",)))
    for w, name in ((64, "popq"), (16, "popw")):
        b.add(Opcode(name, "pop", w, ((slot({R, M}, w, "w"),),),
                     latency=2, implicit_reads=("rsp",),
                     implicit_writes=("rsp",)))
    b.add(Opcode("xchgq", "xchg", 64,
                 ((slot({R}, 64, "rw"), slot({R, M}, 64, "rw")),),
                 latency=2))
    b.add(Opcode("xchgl", "xchg", 32,
                 ((slot({R}, 32, "rw"), slot({R, M}, 32, "rw")),),
                 latency=2))

    # --- integer arithmetic -----------------------------------------------
    b.binary_alu("add")
    b.binary_alu("sub")
    b.binary_alu("adc", flags_read=frozenset({"CF"}))
    b.binary_alu("sbb", flags_read=frozenset({"CF"}))
    b.binary_alu("cmp", dst_access="r")
    b.binary_alu("and", flags_written=LOGIC_FLAGS)
    b.binary_alu("or", flags_written=LOGIC_FLAGS)
    b.binary_alu("xor", flags_written=LOGIC_FLAGS)
    b.binary_alu("test", flags_written=LOGIC_FLAGS, dst_access="r")
    b.unary_alu("not", flags_written=NO_FLAGS)
    b.unary_alu("neg")
    b.unary_alu("inc", flags_written=frozenset({"ZF", "SF", "OF", "PF"}))
    b.unary_alu("dec", flags_written=frozenset({"ZF", "SF", "OF", "PF"}))

    # two-operand imul: src(r/m), dst(r); 16/32/64 bit only
    for w in (16, 32, 64):
        name = "imul" + _WIDTH_SUFFIX[w]
        src = slot({R, M, I}, w, "r")
        dst = slot({R}, w, "rw")
        # one-operand widening form shares the mnemonic in AT&T syntax
        wide = slot({R, M}, w, "r")
        b.add(Opcode(name, "imul", w, ((src, dst), (wide,)), latency=3,
                     flags_written=frozenset({"CF", "OF"}),
                     flags_undefined=frozenset({"ZF", "SF", "PF"}),
                     implicit_reads=("rax",),
                     implicit_writes=("rax", "rdx"),
                     uf=(w == 64)))
    for w in (8, 16, 32, 64):
        name = "mul" + _WIDTH_SUFFIX[w]
        b.add(Opcode(name, "mul", w, ((slot({R, M}, w, "r"),),), latency=4,
                     flags_written=frozenset({"CF", "OF"}),
                     flags_undefined=frozenset({"ZF", "SF", "PF"}),
                     implicit_reads=("rax",),
                     implicit_writes=("rax", "rdx"),
                     uf=(w == 64)))
    for w in (16, 32, 64):
        for fam in ("div", "idiv"):
            name = fam + _WIDTH_SUFFIX[w]
            b.add(Opcode(name, fam, w, ((slot({R, M}, w, "r"),),),
                         latency=24 if fam == "div" else 26,
                         flags_undefined=ALL_FLAGS,
                         implicit_reads=("rax", "rdx"),
                         implicit_writes=("rax", "rdx"),
                         uf=(w == 64)))

    # sign-extension idioms
    b.add(Opcode("cltq", "sextax", 64, ((),), implicit_reads=("rax",),
                 implicit_writes=("rax",)))
    b.add(Opcode("cwtl", "sextax", 32, ((),), implicit_reads=("rax",),
                 implicit_writes=("rax",)))
    b.add(Opcode("cqto", "sextdx", 64, ((),), implicit_reads=("rax",),
                 implicit_writes=("rdx",)))
    b.add(Opcode("cltd", "sextdx", 32, ((),), implicit_reads=("rax",),
                 implicit_writes=("rdx",)))

    # --- shifts and rotates -------------------------------------------------
    b.shift("shl")
    b.shift("sal")
    b.shift("shr")
    b.shift("sar")
    b.shift("rol", rotates=True)
    b.shift("ror", rotates=True)

    # --- bit manipulation ---------------------------------------------------
    for w in (16, 32, 64):
        sfx = _WIDTH_SUFFIX[w]
        src = slot({R, M}, w, "r")
        dst = slot({R}, w, "w")
        b.add(Opcode("popcnt" + sfx, "popcnt", w, ((src, dst),), latency=3,
                     flags_written=ALL_FLAGS))
        b.add(Opcode("bsf" + sfx, "bsf", w, ((src, dst),), latency=3,
                     flags_written=frozenset({"ZF"}),
                     flags_undefined=frozenset({"CF", "SF", "OF", "PF"})))
        b.add(Opcode("bsr" + sfx, "bsr", w, ((src, dst),), latency=3,
                     flags_written=frozenset({"ZF"}),
                     flags_undefined=frozenset({"CF", "SF", "OF", "PF"})))
        b.add(Opcode("tzcnt" + sfx, "tzcnt", w, ((src, dst),), latency=3,
                     flags_written=frozenset({"ZF", "CF"}),
                     flags_undefined=frozenset({"SF", "OF", "PF"})))
        b.add(Opcode("lzcnt" + sfx, "lzcnt", w, ((src, dst),), latency=3,
                     flags_written=frozenset({"ZF", "CF"}),
                     flags_undefined=frozenset({"SF", "OF", "PF"})))

    # --- conditional data movement ------------------------------------------
    for cc_name, cc in CONDITION_CODES.items():
        reads = CC_FLAGS_READ[cc]
        for w in (16, 32, 64):
            name = f"cmov{cc_name}{_WIDTH_SUFFIX[w]}"
            src = slot({R, M}, w, "r")
            dst = slot({R}, w, "rw")
            b.add(Opcode(name, "cmov", w, ((src, dst),), cc=cc,
                         flags_read=reads))
        b.add(Opcode(f"set{cc_name}", "set", 8,
                     ((slot({R, M}, 8, "w"),),), cc=cc, flags_read=reads))
        b.add(Opcode(f"j{cc_name}", "jcc", 64, ((slot({L}, 0, "r"),),),
                     cc=cc, flags_read=reads, is_jump=True))
    b.add(Opcode("jmp", "jmp", 64, ((slot({L}, 0, "r"),),), is_jump=True))

    # --- SSE integer / data movement ------------------------------------------
    b.add(Opcode("movd", "movd", 128, (
        (slot({R, M}, 32, "r"), slot({R}, 128, "w", RegClass.XMM)),
        (slot({R}, 128, "r", RegClass.XMM), slot({R, M}, 32, "w")),
    ), latency=2))
    b.add(Opcode("movq_xmm", "movq_xmm", 128, (
        (slot({R, M}, 64, "r"), slot({R}, 128, "w", RegClass.XMM)),
        (slot({R}, 128, "r", RegClass.XMM), slot({R, M}, 64, "w")),
    ), latency=2))
    for name in ("movups", "movaps", "movdqa", "movdqu"):
        b.add(Opcode(name, "movsse", 128, (
            (slot({R, M}, 128, "r", RegClass.XMM),
             slot({R, M}, 128, "w", RegClass.XMM)),
        ), latency=1))
    b.add(Opcode("shufps", "shufps", 128, (
        (slot({I}, 8, "r"), slot({R, M}, 128, "r", RegClass.XMM),
         slot({R}, 128, "rw", RegClass.XMM)),
    ), latency=1))
    b.add(Opcode("pshufd", "pshufd", 128, (
        (slot({I}, 8, "r"), slot({R, M}, 128, "r", RegClass.XMM),
         slot({R}, 128, "w", RegClass.XMM)),
    ), latency=1))
    for name, ew in (("paddb", 8), ("paddw", 16), ("paddd", 32),
                     ("paddq", 64)):
        b.sse_binary(name, "padd", elem_width=ew)
    for name, ew in (("psubb", 8), ("psubw", 16), ("psubd", 32),
                     ("psubq", 64)):
        b.sse_binary(name, "psub", elem_width=ew)
    b.sse_binary("pmullw", "pmull", latency=5, elem_width=16)
    b.sse_binary("pmulld", "pmull", latency=10, elem_width=32)
    b.sse_binary("pmuludq", "pmuludq", latency=5, elem_width=32)
    b.sse_binary("pand", "pand", elem_width=128)
    b.sse_binary("por", "por", elem_width=128)
    b.sse_binary("pxor", "pxor", elem_width=128)
    for name, ew in (("psllw", 16), ("pslld", 32), ("psllq", 64)):
        b.add(Opcode(name, "psll", 128, (
            (slot({I}, 8, "r"), slot({R}, 128, "rw", RegClass.XMM)),
        ), latency=1, elem_width=ew))
    for name, ew in (("psrlw", 16), ("psrld", 32), ("psrlq", 64)):
        b.add(Opcode(name, "psrl", 128, (
            (slot({I}, 8, "r"), slot({R}, 128, "rw", RegClass.XMM)),
        ), latency=1, elem_width=ew))

    # --- misc -------------------------------------------------------------
    b.add(Opcode("nop", "nop", 0, ((),)))

    return b.table


OPCODES: dict[str, Opcode] = _build_table()
"""The full mnemonic table, keyed by mnemonic name."""


def opcode(name: str) -> Opcode:
    """Look up a mnemonic, raising :class:`UnknownOpcodeError` if absent."""
    try:
        return OPCODES[name]
    except KeyError:
        raise UnknownOpcodeError(f"unknown opcode {name!r}") from None


def opcodes_by_family(family: str) -> list[Opcode]:
    return [op for op in OPCODES.values() if op.family == family]


def check_operands(op: Opcode, operands: tuple[Operand, ...]) \
        -> tuple[Slot, ...]:
    """Validate operands against ``op``; return the matching signature.

    Raises:
        OperandTypeError: if no signature matches.
    """
    sig = op.match(operands)
    if sig is None:
        ops = ", ".join(str(o) for o in operands)
        raise OperandTypeError(f"{op.name} does not accept operands ({ops})")
    return sig
