#!/usr/bin/env python3
"""Cycling Through 3 Values (Figure 13): p21.

The Hacker's Delight implementation avoids branches with bit tricks,
which production compilers transcribe literally. STOKE's search — and
this reproduction's — can instead rediscover conditional moves. This
example runs the optimization phase on the O0 compilation and checks
the verified rewrite with the validator, then shows the paper's point:
the cmov version is far cheaper than the literal translation.

Run:  python examples/hackers_delight_p21.py
"""

from repro import (SearchConfig, Stoke, actual_runtime,
                   parse_program, program_latency)
from repro.suite import benchmark

#: The paper's Figure 13 rewrite (cmov-based), for comparison.
PAPER_REWRITE = """
cmpl edi, ecx
cmovel esi, ecx
xorl edi, esi
cmovel edx, ecx
movq rcx, rax
"""


def main() -> None:
    bench = benchmark("p21")
    target = bench.o0
    gcc = bench.gcc
    print(f"llvm -O0: {target.instruction_count} instructions, "
          f"H={program_latency(target)}, "
          f"{actual_runtime(target)} cycles")
    print(f"gcc -O3 (literal bit-trick translation): "
          f"{gcc.instruction_count} instructions, "
          f"{actual_runtime(gcc)} cycles")

    paper = parse_program(PAPER_REWRITE)
    print(f"paper's cmov rewrite: {paper.instruction_count} "
          f"instructions, {actual_runtime(paper)} cycles")

    config = SearchConfig(ell=52, beta=1.0,
                          seed=3, optimization_proposals=160_000,
                          optimization_restarts=16, testcase_count=16)
    print("\nsearching from the O0 target (a couple of minutes; "
          "p21 is one of the larger kernels)...")
    result = Stoke(target, bench.spec, bench.annotations,
                   config=config).run()
    if result.rewrite is not None and result.speedup > 1.0:
        print(f"verified rewrite ({result.rewrite.instruction_count} "
              f"instructions, {result.rewrite_cycles} cycles, "
              f"{result.speedup:.2f}x over -O0):")
        print(result.rewrite)
    else:
        print("search returned only the target at this budget — the "
              "paper spent 30 cluster-minutes here; raise "
              "optimization_proposals to keep peeling stack traffic.")


if __name__ == "__main__":
    main()
