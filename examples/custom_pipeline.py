#!/usr/bin/env python3
"""Compose a pipeline from custom parts: term, strategy, and target.

Demonstrates every seam of the :mod:`repro.api` surface at once:

1. a *user-defined cost term* (``mem-traffic``) that penalizes memory
   operands, registered under a spec key and mixed with the built-ins;
2. an alternative *search strategy* (the annealing schedule);
3. a *target from a listing* — code that is not in the benchmark
   suite, with an explicit live-in/live-out spec (the same path the
   ``repro optimize-file`` CLI verb takes for ``.s`` files on disk).

Run:  python examples/custom_pipeline.py
"""

import json

from repro.api import (CostTerm, SearchConfig, Session, Target,
                       register_cost_term)

# llvm -O0 style code for `return x + y`: every value takes a trip
# through the stack, which both the latency heuristic and our custom
# term will charge for.
LISTING = """
    movq rdi, -8(rsp)
    movq rsi, -16(rsp)
    movq -8(rsp), rax
    addq -16(rsp), rax
"""


class MemTrafficTerm(CostTerm):
    """Counts memory-touching instructions, relative to the target.

    A purely static term: no emulation needed, so it is charged once
    per candidate, before the (bounded) testcase loop runs.
    """

    name = "mem-traffic"

    def bind(self, context):
        self.target_traffic = self._traffic(context.target)

    def program_cost(self, rewrite):
        return self._traffic(rewrite) - self.target_traffic

    @staticmethod
    def _traffic(program):
        return sum(1 for instr in program.real_instructions()
                   if instr.reads_memory or instr.writes_memory)


def main() -> None:
    register_cost_term("mem-traffic", MemTrafficTerm)

    target = Target.from_listing(LISTING, live_in="rdi,rsi",
                                 live_out="rax", name="stack-add")
    session = Session(
        target,
        config=SearchConfig(ell=10, beta=1.0, seed=11,
                            optimization_proposals=20_000,
                            optimization_restarts=8,
                            testcase_count=16),
        cost="correctness,latency,mem-traffic:4",
        strategy="anneal",
    )
    result = session.run()
    print(json.dumps(result.to_json(), indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
