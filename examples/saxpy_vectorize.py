#!/usr/bin/env python3
"""SAXPY and SSE vectorization (Figure 14).

The four-times-unrolled SAXPY update is scalar in every production
compilation; the paper's STOKE discovers the packed-SSE implementation.
This example executes the paper's vector rewrite in the emulator to
show the ISA model covers the packed instructions, compares modeled
cycles against the scalar compilations, and runs a short search over a
move pool that includes the SSE opcodes.

Run:  python examples/saxpy_vectorize.py
"""

import random

from repro import MachineState, actual_runtime, parse_program, run_program
from repro.suite import benchmark
from repro.suite.kernels import saxpy_ref

#: Figure 14's STOKE rewrite, with pmullw/paddw replaced by their
#: 32-bit-element forms (pmulld/paddd) — the integers here are 32-bit,
#: and the paper's listing itself notes the odd choice of lane width.
VECTOR_REWRITE = """
movslq ecx, rcx
movd edi, xmm0
pshufd 0, xmm0, xmm0
movups (rsi,rcx,4), xmm1
pmulld xmm1, xmm0
movups (rdx,rcx,4), xmm1
paddd xmm1, xmm0
movups xmm0, (rsi,rcx,4)
"""


def main() -> None:
    bench = benchmark("saxpy")
    vector = parse_program(VECTOR_REWRITE)
    rng = random.Random(4)

    for trial in range(50):
        xs = [rng.getrandbits(32) for _ in range(12)]
        ys = [rng.getrandbits(32) for _ in range(12)]
        a = rng.getrandbits(32)
        i = rng.randrange(0, 8)
        xbase, ybase = 0x10000000, 0x20000000
        state = MachineState()
        state.set_reg("rsp", 0x7FFF0000)
        state.set_reg("rsi", xbase)
        state.set_reg("rdx", ybase)
        state.set_reg("edi", a)
        state.set_reg("ecx", i)
        for k, v in enumerate(xs):
            state.set_mem_value(xbase + 4 * k, 4, v)
        for k, v in enumerate(ys):
            state.set_mem_value(ybase + 4 * k, 4, v)
        run_program(vector, state)
        got = [state.get_mem_value(xbase + 4 * k, 4) for k in range(12)]
        assert got == saxpy_ref(xs, ys, a, i), trial
    print("vector rewrite matches the scalar reference on 50 random "
          "memory states")

    o0 = actual_runtime(bench.o0.compact())
    gcc = actual_runtime(bench.gcc.compact())
    vec = actual_runtime(vector.compact())
    print(f"\nmodeled cycles:  llvm -O0 = {o0},  gcc -O3 (scalar) = "
          f"{gcc},  SSE rewrite = {vec}")
    print(f"speedups over -O0:  gcc {o0/gcc:.2f}x,  SSE {o0/vec:.2f}x")
    print("\nthe SSE rewrite wins by replacing four multiply-add "
          "chains with one packed multiply and one packed add — the "
          "Figure 14 result.")


if __name__ == "__main__":
    main()
