#!/usr/bin/env python3
"""The paper's headline example: Montgomery multiplication (Figure 1).

Demonstrates the three pillars of the reproduction on the mont kernel:

1. the emulator executes the paper's gcc -O3 listing and STOKE's
   11-instruction rewrite and both match the arithmetic reference;
2. the sound validator *proves* the STOKE rewrite equivalent to the
   llvm -O0 style target (with 64-bit multiplication treated as an
   uninterpreted function, exactly as in Section 5.2);
3. the performance model shows the same ordering the paper measures:
   STOKE beats gcc -O3, which beats llvm -O0.

Run:  python examples/montgomery.py
"""

import random

from repro import MachineState, Validator, actual_runtime, run_program
from repro.suite import benchmark
from repro.suite.kernels import mont_ref


def check_emulation(bench, rng: random.Random) -> None:
    for _ in range(100):
        vals = {
            "rsi": rng.getrandbits(64), "ecx": rng.getrandbits(32),
            "edx": rng.getrandbits(32), "rdi": rng.getrandbits(64),
            "r8": rng.getrandbits(64),
        }
        lo, hi = mont_ref(vals["rsi"], vals["ecx"], vals["edx"],
                          vals["rdi"], vals["r8"])
        for name in ("o0", "gcc", "paper_stoke"):
            prog = getattr(bench, name)
            state = MachineState()
            state.set_reg("rsp", 0x7FFF0000)
            for reg, value in vals.items():
                state.set_reg(reg, value)
            run_program(prog, state)
            assert state.get_reg("rdi") == lo and \
                state.get_reg("r8") == hi, name
    print("emulation: o0 / gcc / STOKE listings all compute "
          "c1:c0 = np*(mh:ml) + c0 + c1 on 100 random inputs")


def main() -> None:
    bench = benchmark("mont")
    rng = random.Random(1)
    check_emulation(bench, rng)

    stoke_rewrite = bench.paper_stoke
    assert stoke_rewrite is not None
    print("\nvalidating STOKE's Figure 1 rewrite against the O0 target "
          "(64-bit mul as an uninterpreted function)...")
    outcome = Validator().validate(bench.o0, stoke_rewrite, bench.spec)
    print(f"equivalent: {outcome.equivalent} "
          f"({outcome.num_clauses} CNF clauses, {outcome.seconds:.1f}s)")

    o0 = actual_runtime(bench.o0.compact())
    gcc = actual_runtime(bench.gcc.compact())
    stoke = actual_runtime(stoke_rewrite.compact())
    print(f"\nmodeled cycles:  llvm -O0 = {o0},  gcc -O3 = {gcc},  "
          f"STOKE = {stoke}")
    print(f"speedups over -O0:  gcc {o0/gcc:.2f}x,  STOKE {o0/stoke:.2f}x"
          f"  (paper: STOKE ~1.6x over gcc; here {gcc/stoke:.2f}x)")


if __name__ == "__main__":
    main()
