#!/usr/bin/env python3
"""Quickstart: superoptimize a tiny kernel end to end.

Takes the llvm -O0 style compilation of ``x & (x - 1)`` (Hacker's
Delight p01, "turn off the rightmost 1 bit"), runs the STOKE pipeline,
and prints the verified rewrite next to the target.

Run:  python examples/quickstart.py
"""

from repro import SearchConfig, Stoke, actual_runtime, program_latency
from repro.suite import benchmark


def main() -> None:
    bench = benchmark("p01")
    target = bench.o0
    print(f"=== target (llvm -O0 style, {target.instruction_count} "
          f"instructions, H={program_latency(target)}, "
          f"{actual_runtime(target)} modeled cycles)")
    print(target)

    config = SearchConfig(
        ell=12,
        beta=1.0,                       # colder than the paper's 0.1:
        seed=7,                         # one chain instead of a cluster
        optimization_proposals=40_000,
        optimization_restarts=10,
        testcase_count=16,
    )
    stoke = Stoke(target, bench.spec, bench.annotations, config=config)
    result = stoke.run()

    if result.rewrite is None:
        print("no verified rewrite found; try a larger budget")
        return
    rewrite = result.rewrite
    print(f"\n=== STOKE rewrite (verified, "
          f"{rewrite.instruction_count} instructions, "
          f"H={program_latency(rewrite)}, "
          f"{result.rewrite_cycles} modeled cycles)")
    print(rewrite)
    print(f"\nmodeled speedup over the target: {result.speedup:.2f}x "
          f"({result.seconds:.1f}s of search)")


if __name__ == "__main__":
    main()
