#!/usr/bin/env python3
"""Quickstart: superoptimize a tiny kernel end to end.

Takes the llvm -O0 style compilation of ``x & (x - 1)`` (Hacker's
Delight p01, "turn off the rightmost 1 bit"), runs the pipeline through
the public :mod:`repro.api`, and prints the verified rewrite next to
the target.

Run:  python examples/quickstart.py
"""

from repro.api import SearchConfig, Session, Target


def main() -> None:
    target = Target.from_suite("p01")
    print(f"=== target (llvm -O0 style, "
          f"{target.program.instruction_count} instructions)")
    print(target.program)

    config = SearchConfig(
        ell=12,
        beta=1.0,                       # colder than the paper's 0.1:
        seed=0,                         # one chain instead of a cluster
        optimization_proposals=40_000,
        optimization_restarts=10,
        testcase_count=16,
    )
    session = Session(target, config=config,
                      cost="correctness,latency",   # the paper's Eq. 2
                      strategy="mcmc")              # and its sampler
    result = session.run()

    if result.rewrite_asm is None:
        print("no verified rewrite found; try a larger budget")
        return
    print(f"\n=== STOKE rewrite (verified, "
          f"{result.rewrite_cycles} modeled cycles)")
    print(result.rewrite_asm)
    print(f"\nmodeled speedup over the target: {result.speedup:.2f}x "
          f"({result.seconds:.1f}s of search)")


if __name__ == "__main__":
    main()
